(* Hypervisor simulators: host capacity, xenstore, Xen hypercalls, QEMU
   process + QMP monitor, ESX endpoint protocol, LXC host, guest agent. *)

open Testutil
module H = Hvsim.Hostinfo
module Xs = Hvsim.Xenstore
module Xen = Hvsim.Xen_hv
module Qp = Hvsim.Qemu_proc
module Esx = Hvsim.Esx_host
module Lxc = Hvsim.Lxc_host
module Ga = Hvsim.Guest_agent
module J = Mini_json
module X = Mini_xml
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state

(* --- Hostinfo ----------------------------------------------------------- *)

let test_host_reserve_release () =
  let host = H.create ~memory_kib:1000 ~cpus:2 () in
  Alcotest.(check int) "all free" 1000 (H.free_memory_kib host);
  sok (H.reserve host ~memory_kib:600 ~vcpus:1);
  Alcotest.(check int) "reserved" 400 (H.free_memory_kib host);
  (match H.reserve host ~memory_kib:600 ~vcpus:1 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "overcommit accepted");
  H.release host ~memory_kib:600 ~vcpus:1;
  Alcotest.(check int) "released" 1000 (H.free_memory_kib host)

let test_host_vcpu_oversubscription_cap () =
  let host = H.create ~memory_kib:1_000_000 ~cpus:1 () in
  (* 8x oversubscription allowed, not more. *)
  sok (H.reserve host ~memory_kib:1 ~vcpus:8);
  match H.reserve host ~memory_kib:1 ~vcpus:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "9th vcpu on 1-cpu host accepted"

let test_host_over_release_rejected () =
  let host = H.create () in
  match H.release host ~memory_kib:1 ~vcpus:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-release accepted"

(* --- Xenstore ----------------------------------------------------------- *)

let test_xenstore_basics () =
  let store = Xs.create () in
  Xs.write store "/local/domain/1/name" "vm1";
  Alcotest.(check string) "read back" "vm1" (Xs.read store "/local/domain/1/name");
  Alcotest.(check bool) "intermediate dirs" true (Xs.exists store "/local/domain");
  Alcotest.(check (list string)) "directory" [ "1" ] (Xs.directory store "/local/domain");
  Xs.write store "/local/domain/2/name" "vm2";
  Alcotest.(check (list string)) "two children" [ "1"; "2" ]
    (Xs.directory store "/local/domain")

let test_xenstore_missing_paths () =
  let store = Xs.create () in
  (match Xs.read store "/nope" with
   | exception Xs.Noent _ -> ()
   | _ -> Alcotest.fail "read of missing path succeeded");
  Alcotest.(check (option string)) "read_opt" None (Xs.read_opt store "/nope");
  Xs.rm store "/nope" (* no-op, must not raise *)

let test_xenstore_bad_paths () =
  let store = Xs.create () in
  List.iter
    (fun path ->
      match Xs.write store path "v" with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "accepted path %S" path)
    [ "relative"; "//double"; "/trailing/"; "" ]

let test_xenstore_rm_subtree () =
  let store = Xs.create () in
  Xs.write store "/a/b/c" "1";
  Xs.write store "/a/b/d" "2";
  Xs.write store "/a/e" "3";
  Xs.rm store "/a/b";
  Alcotest.(check bool) "subtree gone" false (Xs.exists store "/a/b/c");
  Alcotest.(check string) "sibling survives" "3" (Xs.read store "/a/e")

let test_xenstore_watches () =
  let store = Xs.create () in
  let fired = ref [] in
  let w = Xs.watch store "/local/domain" (fun path -> fired := path :: !fired) in
  Xs.write store "/local/domain/3/state" "running";
  Xs.write store "/other/path" "x";
  Alcotest.(check (list string)) "fired below watch point only"
    [ "/local/domain/3/state" ] !fired;
  Xs.rm store "/local/domain/3";
  Alcotest.(check int) "rm fires too" 2 (List.length !fired);
  Xs.unwatch store w;
  Xs.write store "/local/domain/4/state" "running";
  Alcotest.(check int) "unwatched" 2 (List.length !fired)

let test_xenstore_node_count () =
  let store = Xs.create () in
  Xs.write store "/a/b" "1";
  Xs.write store "/a/c" "2";
  Alcotest.(check int) "a, a/b, a/c" 3 (Xs.node_count store)

(* Model-based property: a random write/rm trace agrees with a reference
   string-map model on every read. *)
let prop_xenstore_vs_model =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 40)
        (pair (int_bound 2)
           (oneofl
              [ "/a"; "/a/b"; "/a/b/c"; "/a/d"; "/x"; "/x/y"; "/x/y/z" ])))
  in
  qcheck_case ~count:100 "xenstore agrees with a map model" (QCheck.make gen)
    (fun trace ->
      let store = Xs.create () in
      let model = Hashtbl.create 8 in
      let prefixed prefix path =
        let pl = String.length prefix and l = String.length path in
        l >= pl && String.sub path 0 pl = prefix
        && (l = pl || path.[pl] = '/')
      in
      List.iter
        (fun (op, path) ->
          match op with
          | 0 | 1 ->
            let v = Printf.sprintf "%d-%s" op path in
            Xs.write store path v;
            Hashtbl.replace model path v
          | _ ->
            Xs.rm store path;
            Hashtbl.iter
              (fun k _ -> if prefixed path k then Hashtbl.remove model k)
              (Hashtbl.copy model))
        trace;
      Hashtbl.fold
        (fun path v acc -> acc && Xs.read_opt store path = Some v)
        model true
      && List.for_all
           (fun path ->
             Hashtbl.mem model path
             || match Xs.read_opt store path with
                | None -> true
                | Some _ -> false)
           [ "/a"; "/a/b"; "/a/b/c"; "/a/d"; "/x"; "/x/y"; "/x/y/z" ])

(* --- Xen_hv ------------------------------------------------------------- *)

let boot_xen () = Xen.boot (H.create ~memory_kib:(4 * 1024 * 1024) ())

let test_xen_boot_dom0 () =
  let hv = boot_xen () in
  Alcotest.(check (list int)) "dom0 present" [ 0 ] (Xen.list_domains hv);
  let info = sok (Xen.domain_info hv 0) in
  Alcotest.(check bool) "dom0 running" true (info.Xen.dom_state = Vm_state.Running);
  Alcotest.(check string) "store entry" "Domain-0"
    (Xs.read (Xen.store hv) "/local/domain/0/name")

let test_xen_create_lifecycle () =
  let hv = boot_xen () in
  let cfg = Vm_config.make ~memory_kib:(16 * 1024) (fresh_name "xenvm") in
  let id = sok (Xen.domctl_create hv cfg) in
  Alcotest.(check bool) "created paused" true
    ((sok (Xen.domain_info hv id)).Xen.dom_state = Vm_state.Paused);
  sok (Xen.domctl_unpause hv id);
  Alcotest.(check bool) "running" true
    ((sok (Xen.domain_info hv id)).Xen.dom_state = Vm_state.Running);
  Alcotest.(check (option int)) "lookup by name" (Some id)
    (Xen.lookup_by_name hv cfg.Vm_config.name);
  Alcotest.(check (option int)) "lookup by uuid" (Some id)
    (Xen.lookup_by_uuid hv cfg.Vm_config.uuid);
  sok (Xen.domctl_destroy hv id);
  Alcotest.(check (list int)) "domain gone" [ 0 ] (Xen.list_domains hv);
  Alcotest.(check bool) "store cleaned" false
    (Xs.exists (Xen.store hv) (Printf.sprintf "/local/domain/%d" id))

let test_xen_shutdown_releases_memory () =
  let host = H.create ~memory_kib:(2 * 1024 * 1024) () in
  let hv = Xen.boot host in
  let before = H.free_memory_kib host in
  let id = sok (Xen.domctl_create hv (Vm_config.make ~memory_kib:(512 * 1024) (fresh_name "x"))) in
  sok (Xen.domctl_unpause hv id);
  Alcotest.(check int) "memory taken" (before - 512 * 1024) (H.free_memory_kib host);
  sok (Xen.domctl_shutdown hv id);
  Alcotest.(check int) "memory returned" before (H.free_memory_kib host)

let test_xen_dom0_protected () =
  let hv = boot_xen () in
  (match Xen.domctl_destroy hv 0 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "destroyed Domain-0");
  match Xen.domctl_pause hv 0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "paused Domain-0"

let test_xen_duplicate_name_rejected () =
  let hv = boot_xen () in
  let cfg = Vm_config.make (fresh_name "dup") in
  let _id = sok (Xen.domctl_create hv cfg) in
  match Xen.domctl_create hv cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate domain name accepted"

let test_xen_invalid_domid () =
  let hv = boot_xen () in
  match Xen.domctl_unpause hv 999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unpaused nonexistent domain"

(* --- Qemu_proc ---------------------------------------------------------- *)

let spawn_proc ?(host = H.create ()) name =
  let cfg = Vm_config.make ~memory_kib:(8 * 1024) name in
  let argv = [ "qemu-system-x86_64"; "-name"; name; "-S" ] in
  (cfg, sok (Qp.spawn host ~argv cfg))

let qmp_ok proc cmd =
  match Qp.qmp proc ~cmd () with
  | Ok v -> v
  | Error msg -> Alcotest.failf "qmp %s failed: %s" cmd msg

let test_qemu_spawn_requirements () =
  let host = H.create () in
  let cfg = Vm_config.make (fresh_name "q") in
  (match Qp.spawn host ~argv:[ "qemu"; "-name"; cfg.Vm_config.name ] cfg with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "spawn without -S accepted");
  match Qp.spawn host ~argv:[ "qemu"; "-S" ] cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spawn without -name accepted"

let test_qemu_capabilities_negotiation () =
  let _, proc = spawn_proc (fresh_name "q") in
  (* Commands before qmp_capabilities are refused. *)
  (match Qp.qmp proc ~cmd:"query-status" () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "command before negotiation accepted");
  ignore (qmp_ok proc "qmp_capabilities");
  let status = qmp_ok proc "query-status" in
  Alcotest.(check string) "starts paused" "paused"
    (J.get_string (J.member "status" status))

let test_qemu_lifecycle_via_monitor () =
  let _, proc = spawn_proc (fresh_name "q") in
  ignore (qmp_ok proc "qmp_capabilities");
  ignore (qmp_ok proc "cont");
  Alcotest.(check bool) "running" true (Qp.state proc = Vm_state.Running);
  ignore (qmp_ok proc "stop");
  Alcotest.(check bool) "paused" true (Qp.state proc = Vm_state.Paused);
  ignore (qmp_ok proc "cont");
  ignore (qmp_ok proc "system_powerdown");
  Alcotest.(check bool) "process exited" false (Qp.is_alive proc);
  match Qp.qmp proc ~cmd:"query-status" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "monitor answered after exit"

let test_qemu_quit_releases_host () =
  let host = H.create ~memory_kib:(1024 * 1024) () in
  let before = H.free_memory_kib host in
  let _, proc = spawn_proc ~host (fresh_name "q") in
  ignore (qmp_ok proc "qmp_capabilities");
  Alcotest.(check bool) "memory held" true (H.free_memory_kib host < before);
  ignore (qmp_ok proc "quit");
  Alcotest.(check int) "memory returned" before (H.free_memory_kib host)

let test_qemu_monitor_protocol_errors () =
  let _, proc = spawn_proc (fresh_name "q") in
  let reply = Qp.monitor_command proc "this is not json" in
  Alcotest.(check bool) "json error classified" true
    (J.member_opt "error" (J.of_string reply) <> None);
  let reply2 = Qp.monitor_command proc "{\"not-execute\": 1}" in
  Alcotest.(check bool) "missing execute classified" true
    (J.member_opt "error" (J.of_string reply2) <> None);
  ignore (qmp_ok proc "qmp_capabilities");
  match Qp.qmp proc ~cmd:"bogus-command" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command accepted"

let test_qemu_inject_crash () =
  let _, proc = spawn_proc (fresh_name "q") in
  ignore (qmp_ok proc "qmp_capabilities");
  ignore (qmp_ok proc "cont");
  ignore (qmp_ok proc "inject-crash");
  Alcotest.(check bool) "crashed" true (Qp.state proc = Vm_state.Crashed);
  let status = qmp_ok proc "query-status" in
  Alcotest.(check string) "status reports panic" "guest-panicked"
    (J.get_string (J.member "status" status))

(* --- Esx_host ----------------------------------------------------------- *)

let esx_request esx xml = Esx.endpoint_request esx xml

let login esx =
  let reply =
    esx_request esx
      "<request op=\"Login\"><username>root</username><password>esx</password></request>"
  in
  let root = X.of_string reply in
  X.attr_exn (X.child_exn root "session") "token"

let test_esx_login_logout () =
  let esx = Esx.create (H.create ()) in
  let token = login esx in
  Alcotest.(check int) "one session" 1 (Esx.session_count esx);
  ignore
    (esx_request esx (Printf.sprintf "<request op=\"Logout\" session=\"%s\"/>" token));
  Alcotest.(check int) "logged out" 0 (Esx.session_count esx)

let test_esx_bad_credentials () =
  let esx = Esx.create (H.create ()) in
  let reply =
    esx_request esx
      "<request op=\"Login\"><username>root</username><password>wrong</password></request>"
  in
  Alcotest.(check string) "fault" "fault" (X.of_string reply).X.tag

let test_esx_requires_session () =
  let esx = Esx.create (H.create ()) in
  let reply = esx_request esx "<request op=\"ListVMs\"/>" in
  Alcotest.(check string) "fault without session" "fault" (X.of_string reply).X.tag;
  let reply2 = esx_request esx "<request op=\"ListVMs\" session=\"sess-999\"/>" in
  Alcotest.(check string) "fault with bogus token" "fault" (X.of_string reply2).X.tag

let test_esx_vm_lifecycle () =
  let esx = Esx.create (H.create ()) in
  let token = login esx in
  let cfg = Vm_config.make ~memory_kib:(32 * 1024) (fresh_name "esxvm") in
  let register =
    Printf.sprintf "<request op=\"RegisterVM\" session=\"%s\">%s</request>" token
      (Vmm.Domxml.to_xml ~virt_type:"vmware" cfg)
  in
  let reply = X.of_string (esx_request esx register) in
  Alcotest.(check string) "registered" "response" reply.X.tag;
  Alcotest.(check int) "inventory" 1 (Esx.registered_count esx);
  let op name =
    X.of_string
      (esx_request esx
         (Printf.sprintf "<request op=\"%s\" session=\"%s\" name=\"%s\"/>" name token
            cfg.Vm_config.name))
  in
  Alcotest.(check string) "power on" "response" (op "PowerOnVM").X.tag;
  Alcotest.(check string) "suspend" "response" (op "SuspendVM").X.tag;
  Alcotest.(check string) "resume" "response" (op "ResumeVM").X.tag;
  (* Unregister while active must fault. *)
  Alcotest.(check string) "unregister while on" "fault" (op "UnregisterVM").X.tag;
  Alcotest.(check string) "power off" "response" (op "PowerOffVM").X.tag;
  Alcotest.(check string) "unregister" "response" (op "UnregisterVM").X.tag;
  Alcotest.(check int) "inventory empty" 0 (Esx.registered_count esx)

let test_esx_invalid_state_faults () =
  let esx = Esx.create (H.create ()) in
  let token = login esx in
  let cfg = Vm_config.make (fresh_name "esxvm") in
  ignore
    (esx_request esx
       (Printf.sprintf "<request op=\"RegisterVM\" session=\"%s\">%s</request>" token
          (Vmm.Domxml.to_xml ~virt_type:"vmware" cfg)));
  let reply =
    esx_request esx
      (Printf.sprintf "<request op=\"ResumeVM\" session=\"%s\" name=\"%s\"/>" token
         cfg.Vm_config.name)
  in
  Alcotest.(check string) "resume of off vm faults" "fault" (X.of_string reply).X.tag

let test_esx_malformed_xml_faults () =
  let esx = Esx.create (H.create ()) in
  let reply = esx_request esx "<not even xml" in
  Alcotest.(check string) "fault" "fault" (X.of_string reply).X.tag

(* --- Lxc_host ----------------------------------------------------------- *)

let container_cfg name =
  Vm_config.make ~os:Vm_config.Container_exe ~memory_kib:(4 * 1024) name

let test_lxc_lifecycle () =
  let lxc = Lxc.create (H.create ()) in
  let name = fresh_name "ct" in
  sok (Lxc.define lxc (container_cfg name));
  Alcotest.(check bool) "cgroup created" true (Lxc.cgroup_exists lxc ("/machine/" ^ name));
  sok (Lxc.start lxc name);
  let info = sok (Lxc.info lxc name) in
  Alcotest.(check bool) "running" true (info.Lxc.info_state = Lxc.Running);
  Alcotest.(check bool) "has init pid" true (info.Lxc.init_pid <> None);
  Alcotest.(check int) "five namespaces" 5 (List.length info.Lxc.namespaces);
  sok (Lxc.freeze lxc name);
  Alcotest.(check (option string)) "freezer cgroup" (Some "FROZEN")
    (Lxc.cgroup_get lxc ("/machine/" ^ name) "freezer.state");
  sok (Lxc.thaw lxc name);
  sok (Lxc.stop lxc name);
  sok (Lxc.undefine lxc name);
  Alcotest.(check bool) "cgroup removed" false (Lxc.cgroup_exists lxc ("/machine/" ^ name))

let test_lxc_state_errors () =
  let lxc = Lxc.create (H.create ()) in
  let name = fresh_name "ct" in
  sok (Lxc.define lxc (container_cfg name));
  (match Lxc.freeze lxc name with Error _ -> () | Ok () -> Alcotest.fail "froze stopped");
  (match Lxc.stop lxc name with Error _ -> () | Ok () -> Alcotest.fail "stopped stopped");
  sok (Lxc.start lxc name);
  (match Lxc.start lxc name with Error _ -> () | Ok () -> Alcotest.fail "double start");
  (match Lxc.undefine lxc name with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "undefined active container");
  sok (Lxc.stop lxc name)

let test_lxc_vm_config_rejected () =
  let lxc = Lxc.create (H.create ()) in
  match Lxc.define lxc (Vm_config.make (fresh_name "notct")) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "hvm config accepted as container"

let test_lxc_memory_resize () =
  let lxc = Lxc.create (H.create ()) in
  let name = fresh_name "ct" in
  sok (Lxc.define lxc (container_cfg name));
  sok (Lxc.set_memory_limit lxc name (64 * 1024));
  let info = sok (Lxc.info lxc name) in
  Alcotest.(check int) "cgroup limit applied" (64 * 1024) info.Lxc.memory_limit_kib

(* --- Guest_agent -------------------------------------------------------- *)

let agent_pair () =
  let image = Vmm.Guest_image.create ~memory_kib:(4 * 1024) in
  let state = ref Vm_state.Running in
  let shutdowns = ref 0 in
  let ep =
    Ga.create ~image ~state:(fun () -> !state) ~request_shutdown:(fun () -> incr shutdowns)
  in
  (ep, image, state, shutdowns)

let exec ep cmd = J.of_string (Ga.exec ep (J.to_string (J.Obj [ ("execute", J.String cmd) ])))

let test_agent_requires_install () =
  let ep, _, _, _ = agent_pair () in
  Alcotest.(check bool) "error before install" true
    (J.member_opt "error" (exec ep "guest-ping") <> None);
  sok (Ga.install ep);
  Alcotest.(check bool) "ping after install" true
    (J.member_opt "return" (exec ep "guest-ping") <> None)

let test_agent_install_dirties_guest () =
  let ep, image, _, _ = agent_pair () in
  sok (Ga.install ep);
  Alcotest.(check int) "footprint written" Ga.install_footprint_pages
    (Vmm.Guest_image.dirty_count image)

let test_agent_unavailable_when_not_running () =
  let ep, _, state, _ = agent_pair () in
  sok (Ga.install ep);
  state := Vm_state.Paused;
  Alcotest.(check bool) "paused guest unreachable" true
    (J.member_opt "error" (exec ep "guest-ping") <> None);
  state := Vm_state.Shutoff;
  match Ga.install ep with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "installed into a shut-off guest"

let test_agent_shutdown_command () =
  let ep, _, _, shutdowns = agent_pair () in
  sok (Ga.install ep);
  Alcotest.(check bool) "shutdown returns" true
    (J.member_opt "return" (exec ep "guest-shutdown") <> None);
  Alcotest.(check int) "host-side hook fired" 1 !shutdowns

let test_agent_commands_perturb_guest () =
  let ep, image, _, _ = agent_pair () in
  sok (Ga.install ep);
  let base = Vmm.Guest_image.dirty_count image in
  ignore (exec ep "guest-ping");
  Alcotest.(check bool) "pages dirtied by command" true
    (Vmm.Guest_image.dirty_count image >= base);
  Alcotest.(check int) "served counter" 1 (Ga.commands_served ep)

let () =
  Alcotest.run "hvsim"
    [
      ( "hostinfo",
        [
          quick "reserve and release" test_host_reserve_release;
          quick "vcpu oversubscription cap" test_host_vcpu_oversubscription_cap;
          quick "over-release rejected" test_host_over_release_rejected;
        ] );
      ( "xenstore",
        [
          quick "read/write/directory" test_xenstore_basics;
          quick "missing paths" test_xenstore_missing_paths;
          quick "bad paths rejected" test_xenstore_bad_paths;
          quick "rm removes subtree" test_xenstore_rm_subtree;
          quick "watches" test_xenstore_watches;
          quick "node count" test_xenstore_node_count;
          prop_xenstore_vs_model;
        ] );
      ( "xen_hv",
        [
          quick "boot creates Domain-0" test_xen_boot_dom0;
          quick "create/unpause/destroy" test_xen_create_lifecycle;
          quick "shutdown releases memory" test_xen_shutdown_releases_memory;
          quick "Domain-0 protected" test_xen_dom0_protected;
          quick "duplicate name rejected" test_xen_duplicate_name_rejected;
          quick "invalid domid" test_xen_invalid_domid;
        ] );
      ( "qemu_proc",
        [
          quick "spawn requirements" test_qemu_spawn_requirements;
          quick "capabilities negotiation" test_qemu_capabilities_negotiation;
          quick "lifecycle via monitor" test_qemu_lifecycle_via_monitor;
          quick "quit releases host resources" test_qemu_quit_releases_host;
          quick "protocol errors" test_qemu_monitor_protocol_errors;
          quick "crash injection" test_qemu_inject_crash;
        ] );
      ( "esx_host",
        [
          quick "login/logout" test_esx_login_logout;
          quick "bad credentials" test_esx_bad_credentials;
          quick "session required" test_esx_requires_session;
          quick "vm lifecycle" test_esx_vm_lifecycle;
          quick "invalid state faults" test_esx_invalid_state_faults;
          quick "malformed xml faults" test_esx_malformed_xml_faults;
        ] );
      ( "lxc_host",
        [
          quick "lifecycle incl. freezer" test_lxc_lifecycle;
          quick "state errors" test_lxc_state_errors;
          quick "hvm config rejected" test_lxc_vm_config_rejected;
          quick "cgroup memory resize" test_lxc_memory_resize;
        ] );
      ( "guest_agent",
        [
          quick "requires install" test_agent_requires_install;
          quick "install dirties guest" test_agent_install_dirties_guest;
          quick "unavailable when not running" test_agent_unavailable_when_not_running;
          quick "shutdown command" test_agent_shutdown_command;
          quick "commands perturb the guest" test_agent_commands_perturb_guest;
        ] );
    ]
