(* VM model: UUIDs, domain configs, lifecycle state machine, guest memory
   images, and the domain XML schema. *)

open Testutil
module Uuid = Vmm.Uuid
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image

(* --- Uuid --------------------------------------------------------------- *)

let test_uuid_format () =
  let u = Uuid.generate () in
  let s = Uuid.to_string u in
  Alcotest.(check int) "canonical length" 36 (String.length s);
  Alcotest.(check char) "dash positions" '-' s.[8];
  Alcotest.(check char) "version nibble" '4' s.[14]

let test_uuid_uniqueness () =
  let n = 1000 in
  let tbl = Hashtbl.create n in
  for _ = 1 to n do
    Hashtbl.replace tbl (Uuid.to_string (Uuid.generate ())) ()
  done;
  Alcotest.(check int) "all distinct" n (Hashtbl.length tbl)

let test_uuid_parse () =
  let u = Uuid.generate () in
  Alcotest.(check bool) "roundtrip" true (Uuid.of_string (Uuid.to_string u) = Ok u);
  Alcotest.(check bool) "uppercase accepted" true
    (Uuid.of_string (String.uppercase_ascii (Uuid.to_string u)) = Ok u);
  List.iter
    (fun s ->
      match Uuid.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      ""; "not-a-uuid"; "aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeee";
      "aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeeZ";
      "aaaaaaaabbbbccccddddeeeeeeeeeeee----";
    ]

let prop_uuid_roundtrip =
  qcheck_case ~count:100 "generate/parse roundtrip" QCheck.unit (fun () ->
      let u = Uuid.generate () in
      Uuid.of_string (Uuid.to_string u) = Ok u)

(* --- Vm_config ---------------------------------------------------------- *)

let test_config_defaults () =
  let cfg = Vm_config.make "vm" in
  Alcotest.(check int) "default memory" (64 * 1024) cfg.Vm_config.memory_kib;
  Alcotest.(check int) "one disk" 1 (List.length cfg.Vm_config.disks);
  Alcotest.(check int) "one nic" 1 (List.length cfg.Vm_config.nics);
  Alcotest.(check bool) "valid" true (Vm_config.validate cfg = Ok ())

let test_config_validation () =
  let base = Vm_config.make "vm" in
  let invalid cfg =
    match Vm_config.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "invalid config accepted"
  in
  invalid { base with Vm_config.name = "" };
  invalid { base with Vm_config.name = "has/slash" };
  invalid { base with Vm_config.memory_kib = 0 };
  invalid { base with Vm_config.memory_kib = -1 };
  invalid { base with Vm_config.vcpus = 0 };
  invalid { base with Vm_config.vcpus = 5000 };
  invalid
    {
      base with
      Vm_config.nics = [ { network = "default"; mac = "zz:bad"; nic_model = "virtio" } ];
    };
  let disk target =
    Vm_config.
      { source_path = "/d"; target_dev = target; disk_format = "raw"; readonly = false }
  in
  invalid { base with Vm_config.disks = [ disk "vda"; disk "vda" ] }

let test_fresh_mac_unique_and_valid () =
  let macs = List.init 50 (fun _ -> Vm_config.fresh_mac ()) in
  Alcotest.(check int) "distinct" 50 (List.length (List.sort_uniq compare macs));
  List.iter
    (fun mac ->
      Alcotest.(check int) "six groups" 6 (List.length (String.split_on_char ':' mac)))
    macs

let test_os_kind_names () =
  Alcotest.(check bool) "hvm" true (Vm_config.os_kind_of_name "hvm" = Ok Vm_config.Hvm);
  Alcotest.(check bool) "linux alias" true
    (Vm_config.os_kind_of_name "linux" = Ok Vm_config.Paravirt);
  match Vm_config.os_kind_of_name "dos" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus os accepted"

(* --- Vm_state ----------------------------------------------------------- *)

let all_states = Vm_state.[ Running; Blocked; Paused; Shutdown; Shutoff; Crashed ]

let all_events =
  Vm_state.
    [
      Ev_start; Ev_suspend; Ev_resume; Ev_shutdown_request; Ev_shutdown_complete;
      Ev_destroy; Ev_crash; Ev_migrate_out;
    ]

let test_state_machine_totality () =
  List.iter
    (fun s ->
      List.iter
        (fun e ->
          match Vm_state.transition s e with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.(check bool) "message non-empty" true (String.length msg > 0))
        all_events)
    all_states

let test_core_lifecycle_paths () =
  let step state event =
    match Vm_state.transition state event with
    | Ok next -> next
    | Error msg -> Alcotest.failf "unexpected rejection: %s" msg
  in
  let s = Vm_state.Shutoff in
  let s = step s Vm_state.Ev_start in
  Alcotest.(check bool) "running" true (s = Vm_state.Running);
  let s = step s Vm_state.Ev_suspend in
  let s = step s Vm_state.Ev_resume in
  let s = step s Vm_state.Ev_shutdown_request in
  Alcotest.(check bool) "in shutdown" true (s = Vm_state.Shutdown);
  let s = step s Vm_state.Ev_shutdown_complete in
  Alcotest.(check bool) "shut off" true (s = Vm_state.Shutoff)

let test_invalid_transitions () =
  let invalid s e =
    match Vm_state.transition s e with
    | Error _ -> ()
    | Ok s' ->
      Alcotest.failf "%s + %s accepted -> %s" (Vm_state.state_name s)
        (Vm_state.event_name e) (Vm_state.state_name s')
  in
  invalid Vm_state.Running Vm_state.Ev_start;
  invalid Vm_state.Shutoff Vm_state.Ev_suspend;
  invalid Vm_state.Shutoff Vm_state.Ev_resume;
  invalid Vm_state.Running Vm_state.Ev_resume;
  invalid Vm_state.Shutoff Vm_state.Ev_destroy;
  invalid Vm_state.Paused Vm_state.Ev_shutdown_request;
  invalid Vm_state.Crashed Vm_state.Ev_crash

let test_crash_recovery () =
  Alcotest.(check bool) "crash from running" true
    (Vm_state.transition Vm_state.Running Vm_state.Ev_crash = Ok Vm_state.Crashed);
  Alcotest.(check bool) "restart after crash" true
    (Vm_state.transition Vm_state.Crashed Vm_state.Ev_start = Ok Vm_state.Running);
  Alcotest.(check bool) "destroy after crash" true
    (Vm_state.transition Vm_state.Crashed Vm_state.Ev_destroy = Ok Vm_state.Shutoff)

let test_state_names_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Vm_state.state_name s ^ " roundtrips")
        true
        (Vm_state.state_of_name (Vm_state.state_name s) = Ok s))
    all_states

let prop_active_iff_not_shutoff =
  qcheck_case ~count:50 "is_active matches Shutoff"
    QCheck.(int_bound (List.length all_states - 1))
    (fun i ->
      let s = List.nth all_states i in
      Vm_state.is_active s = (s <> Vm_state.Shutoff))

(* --- Guest_image -------------------------------------------------------- *)

let test_image_geometry () =
  let img = Guest_image.create ~memory_kib:1024 in
  Alcotest.(check int) "memory recorded" 1024 (Guest_image.memory_kib img);
  Alcotest.(check int) "pages" (1024 / Guest_image.bytes_per_page)
    (Guest_image.page_count img);
  Alcotest.(check int) "starts clean" 0 (Guest_image.dirty_count img)

let test_write_and_transfer () =
  let img = Guest_image.create ~memory_kib:64 in
  Guest_image.write_page img 3;
  Guest_image.write_page img 7;
  Alcotest.(check (list int)) "dirty list" [ 3; 7 ] (Guest_image.dirty_pages img);
  let data = Guest_image.transfer_page img 3 in
  Alcotest.(check int) "page size" Guest_image.bytes_per_page (String.length data);
  Alcotest.(check (list int)) "3 cleaned" [ 7 ] (Guest_image.dirty_pages img)

let test_install_page () =
  let src = Guest_image.create ~memory_kib:64 in
  let dst = Guest_image.create ~memory_kib:64 in
  Guest_image.write_page src 5;
  Guest_image.install_page dst 5 (Guest_image.read_page src 5);
  Alcotest.(check string) "byte-identical page" (Guest_image.read_page src 5)
    (Guest_image.read_page dst 5);
  match Guest_image.install_page dst 5 "xx" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "short page accepted"

let test_bounds_checked () =
  let img = Guest_image.create ~memory_kib:64 in
  (match Guest_image.write_page img (-1) with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "negative index accepted");
  match Guest_image.write_page img (Guest_image.page_count img) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range index accepted"

let test_dirty_randomly_deterministic () =
  let a = Guest_image.create ~memory_kib:4096 in
  let b = Guest_image.create ~memory_kib:4096 in
  Guest_image.dirty_randomly a ~rate:0.25 ~seed:11;
  Guest_image.dirty_randomly b ~rate:0.25 ~seed:11;
  Alcotest.(check (list int)) "same seed, same pages" (Guest_image.dirty_pages a)
    (Guest_image.dirty_pages b);
  let expected = int_of_float (0.25 *. float_of_int (Guest_image.page_count a)) in
  Alcotest.(check int) "target count reached" expected (Guest_image.dirty_count a)

let test_checksum_tracks_content () =
  let a = Guest_image.create ~memory_kib:64 in
  let b = Guest_image.create ~memory_kib:64 in
  Alcotest.(check bool) "fresh images equal" true (Guest_image.equal_contents a b);
  Guest_image.write_page a 0;
  Alcotest.(check bool) "differ after write" false (Guest_image.equal_contents a b);
  Guest_image.install_page b 0 (Guest_image.read_page a 0);
  Alcotest.(check bool) "checksums equal after copy" true
    (Guest_image.checksum a = Guest_image.checksum b)

(* --- Domxml ------------------------------------------------------------- *)

let test_domxml_roundtrip () =
  let cfg =
    Vm_config.make ~memory_kib:(128 * 1024) ~vcpus:4 ~features:[ "acpi"; "apic" ]
      "xmlvm"
  in
  let xml = Vmm.Domxml.to_xml ~virt_type:"kvm" cfg in
  let cfg', virt_type = sok (Vmm.Domxml.of_xml xml) in
  Alcotest.(check string) "virt type" "kvm" virt_type;
  Alcotest.(check bool) "config preserved" true (Vm_config.equal cfg cfg')

let test_domxml_memory_units () =
  let xml unit_attr value =
    Printf.sprintf
      "<domain type=\"test\"><name>m</name><memory unit=\"%s\">%d</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>"
      unit_attr value
  in
  let mem u v =
    let cfg, _ = sok (Vmm.Domxml.of_xml (xml u v)) in
    cfg.Vm_config.memory_kib
  in
  Alcotest.(check int) "KiB" 2048 (mem "KiB" 2048);
  Alcotest.(check int) "MiB" (512 * 1024) (mem "MiB" 512);
  Alcotest.(check int) "GiB" (1024 * 1024) (mem "GiB" 1)

let test_domxml_defaults () =
  let xml =
    "<domain type=\"test\"><name>min</name><memory>1024</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>"
  in
  let cfg, _ = sok (Vmm.Domxml.of_xml xml) in
  Alcotest.(check (list string)) "no disks" []
    (List.map (fun (d : Vm_config.disk) -> d.Vm_config.target_dev) cfg.Vm_config.disks);
  Alcotest.(check int) "memory" 1024 cfg.Vm_config.memory_kib

let bad_domains =
  [
    ("wrong root", "<vm><name>x</name></vm>");
    ( "no name",
      "<domain type=\"t\"><memory>1</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ( "no memory",
      "<domain type=\"t\"><name>x</name><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ( "bad memory",
      "<domain type=\"t\"><name>x</name><memory>lots</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ( "bad unit",
      "<domain type=\"t\"><name>x</name><memory unit=\"TB\">1</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ( "zero vcpu",
      "<domain type=\"t\"><name>x</name><memory>1024</memory><vcpu>0</vcpu><os><type>hvm</type></os></domain>" );
    ( "bad os",
      "<domain type=\"t\"><name>x</name><memory>1024</memory><vcpu>1</vcpu><os><type>beos</type></os></domain>" );
    ( "bad uuid",
      "<domain type=\"t\"><name>x</name><uuid>nope</uuid><memory>1024</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ( "no type attr",
      "<domain><name>x</name><memory>1024</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>" );
    ("not xml", "this is not xml");
  ]

let test_domxml_rejections () =
  List.iter
    (fun (label, xml) ->
      match Vmm.Domxml.of_xml xml with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted: %s" label)
    bad_domains

let gen_config =
  QCheck.Gen.(
    let* mem_mib = int_range 1 512 in
    let* vcpus = int_range 1 16 in
    let* n_disks = int_bound 3 in
    let* n_nics = int_bound 2 in
    let disks =
      List.init n_disks (fun i ->
          Vm_config.
            {
              source_path = Printf.sprintf "/imgs/d%d.img" i;
              target_dev = Printf.sprintf "vd%c" (Char.chr (Char.code 'a' + i));
              disk_format = (if i mod 2 = 0 then "qcow2" else "raw");
              readonly = i = 2;
            })
    in
    let nics =
      List.init n_nics (fun _ ->
          Vm_config.
            { network = "default"; mac = Vm_config.fresh_mac (); nic_model = "virtio" })
    in
    return
      (Vm_config.make ~memory_kib:(mem_mib * 1024) ~vcpus ~disks ~nics
         (fresh_name "gen")))

let prop_domxml_roundtrip =
  qcheck_case ~count:100 "domain XML roundtrip over random configs"
    (QCheck.make gen_config) (fun cfg ->
      match Vmm.Domxml.of_xml (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg) with
      | Ok (cfg', "kvm") -> Vm_config.equal cfg cfg'
      | Ok _ | Error _ -> false)

let () =
  Alcotest.run "vmm"
    [
      ( "uuid",
        [
          quick "canonical format" test_uuid_format;
          quick "uniqueness" test_uuid_uniqueness;
          quick "parsing" test_uuid_parse;
          prop_uuid_roundtrip;
        ] );
      ( "vm_config",
        [
          quick "defaults" test_config_defaults;
          quick "validation" test_config_validation;
          quick "fresh macs" test_fresh_mac_unique_and_valid;
          quick "os kinds" test_os_kind_names;
        ] );
      ( "vm_state",
        [
          quick "totality" test_state_machine_totality;
          quick "core lifecycle paths" test_core_lifecycle_paths;
          quick "invalid transitions rejected" test_invalid_transitions;
          quick "crash recovery" test_crash_recovery;
          quick "state names roundtrip" test_state_names_roundtrip;
          prop_active_iff_not_shutoff;
        ] );
      ( "guest_image",
        [
          quick "geometry" test_image_geometry;
          quick "write and transfer" test_write_and_transfer;
          quick "install page" test_install_page;
          quick "bounds checked" test_bounds_checked;
          quick "deterministic dirtying" test_dirty_randomly_deterministic;
          quick "checksums track content" test_checksum_tracks_content;
        ] );
      ( "domxml",
        [
          quick "roundtrip" test_domxml_roundtrip;
          quick "memory units" test_domxml_memory_units;
          quick "defaults" test_domxml_defaults;
          quick "rejections" test_domxml_rejections;
          prop_domxml_roundtrip;
        ] );
    ]
