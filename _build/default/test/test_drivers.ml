(* Drivers through the public API: uniform lifecycle semantics across all
   five backends, plus each driver's specific behaviours. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Capabilities = Ovirt.Capabilities
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state

let () = Ovirt.initialize ()

(* Per-driver harness: URI builder, virt_type, an OS kind the driver can
   run, and whether guest-cooperative shutdown exists. *)
type harness = {
  label : string;
  fresh_uri : unit -> string;
  virt_type : string;
  os : Vm_config.os_kind;
  has_shutdown : bool;
}

let harnesses =
  [
    {
      label = "test";
      fresh_uri = (fun () -> "test://" ^ fresh_name "tnode" ^ "/");
      virt_type = "test";
      os = Vm_config.Hvm;
      has_shutdown = true;
    };
    {
      label = "qemu";
      fresh_uri = (fun () -> "qemu://" ^ fresh_name "qnode" ^ "/system");
      virt_type = "kvm";
      os = Vm_config.Hvm;
      has_shutdown = true;
    };
    {
      label = "xen";
      fresh_uri = (fun () -> "xen://" ^ fresh_name "xnode" ^ "/");
      virt_type = "xen";
      os = Vm_config.Paravirt;
      has_shutdown = true;
    };
    {
      label = "lxc";
      fresh_uri = (fun () -> "lxc://" ^ fresh_name "lnode" ^ "/");
      virt_type = "lxc";
      os = Vm_config.Container_exe;
      has_shutdown = true;
    };
    {
      label = "esx";
      fresh_uri = (fun () -> "esx://root@" ^ fresh_name "enode" ^ "/?password=esx");
      virt_type = "vmware";
      os = Vm_config.Hvm;
      has_shutdown = false;
    };
  ]

let connect h = vok (Connect.open_uri (h.fresh_uri ()))

let define h conn name =
  let cfg = Vm_config.make ~os:h.os ~memory_kib:(8 * 1024) name in
  vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg))

let state dom = vok (Domain.get_state dom)

(* --- uniform semantics across every driver ------------------------------ *)

let test_uniform_lifecycle h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let dom = define h conn name in
  Alcotest.(check bool) "defined inactive" true (state dom = Vm_state.Shutoff);
  Alcotest.(check bool) "in defined list" true
    (List.mem name (vok (Connect.list_defined_domains conn)));
  vok (Domain.create dom);
  Alcotest.(check bool) "running" true (state dom = Vm_state.Running);
  Alcotest.(check bool) "in active list" true
    (List.exists (fun r -> r.Driver.dom_name = name) (vok (Connect.list_domains conn)));
  vok (Domain.suspend dom);
  Alcotest.(check bool) "paused" true (state dom = Vm_state.Paused);
  vok (Domain.resume dom);
  vok (Domain.destroy dom);
  Alcotest.(check bool) "shut off" true (state dom = Vm_state.Shutoff);
  vok (Domain.undefine dom);
  expect_verr Verror.No_domain (Domain.get_info dom)

let test_uniform_error_semantics h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  expect_verr Verror.No_domain (Domain.lookup_by_name conn name);
  let dom = define h conn name in
  vok (Domain.create dom);
  expect_verr Verror.Operation_invalid (Domain.create dom);
  expect_verr Verror.Operation_invalid (Domain.resume dom);
  expect_error (Domain.undefine dom);
  vok (Domain.destroy dom);
  expect_error (Domain.destroy dom);
  expect_verr Verror.Operation_invalid (Domain.suspend dom)

let test_uniform_duplicate_define h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let _dom = define h conn name in
  let other = Vm_config.make ~os:h.os name in
  expect_error (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type other))

let test_uniform_lookup h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let dom = define h conn name in
  let found = vok (Domain.lookup_by_name conn name) in
  Alcotest.(check string) "by name" name (Domain.name found);
  Alcotest.(check string) "by uuid" name
    (Domain.name (vok (Domain.lookup_by_uuid conn (Domain.uuid dom))));
  expect_verr Verror.No_domain (Domain.lookup_by_uuid conn (Vmm.Uuid.generate ()))

let test_uniform_xml_roundtrip h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let dom = define h conn name in
  let xml = vok (Domain.xml_desc dom) in
  let cfg, virt_type = sok (Vmm.Domxml.of_xml xml) in
  Alcotest.(check string) "virt type" h.virt_type virt_type;
  Alcotest.(check string) "name survives" name cfg.Vm_config.name

let test_uniform_capabilities h () =
  let conn = connect h in
  let caps = vok (Connect.capabilities conn) in
  Alcotest.(check bool) "runs its own OS kind" true
    (List.mem h.os caps.Capabilities.guest_os_kinds);
  Alcotest.(check bool) "define+start supported" true
    (Capabilities.supports caps Capabilities.Feat_define
    && Capabilities.supports caps Capabilities.Feat_start);
  Alcotest.(check bool) "shutdown capability" h.has_shutdown
    (Capabilities.supports caps Capabilities.Feat_shutdown)

let test_uniform_shutdown h () =
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  if h.has_shutdown then begin
    vok (Domain.shutdown dom);
    Alcotest.(check bool) "off after shutdown" true (state dom = Vm_state.Shutoff)
  end
  else begin
    expect_verr Verror.Operation_unsupported (Domain.shutdown dom);
    vok (Domain.destroy dom)
  end

let test_wrong_os_rejected h () =
  if h.label <> "test" then begin
    let conn = connect h in
    let wrong_os =
      match h.os with
      | Vm_config.Container_exe -> Vm_config.Hvm
      | Vm_config.Hvm | Vm_config.Paravirt -> Vm_config.Container_exe
    in
    let cfg = Vm_config.make ~os:wrong_os (fresh_name "wrong") in
    expect_verr Verror.Invalid_arg
      (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg))
  end

let uniform_suite make_test = List.map (fun h -> quick h.label (make_test h)) harnesses

(* --- driver-specific behaviours ----------------------------------------- *)

let test_qemu_argv_format () =
  let cfg = Vm_config.make ~memory_kib:(128 * 1024) ~vcpus:2 "argvm" in
  let argv = Drivers.Drv_qemu.proc_argv cfg in
  Alcotest.(check bool) "-S present" true (List.mem "-S" argv);
  Alcotest.(check bool) "name present" true (List.mem "argvm" argv);
  Alcotest.(check bool) "memory in MiB" true (List.mem "128" argv);
  Alcotest.(check bool) "smp" true (List.mem "2" argv);
  Alcotest.(check bool) "drive flag per disk" true (List.mem "-drive" argv)

let test_qemu_domain_id_is_pid () =
  let h = List.nth harnesses 1 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  let refs = vok (Connect.list_domains conn) in
  let entry = List.find (fun r -> r.Driver.dom_name = Domain.name dom) refs in
  Alcotest.(check bool) "pid >= 1000" true
    (match entry.Driver.dom_id with Some pid -> pid >= 1000 | None -> false)

let test_qemu_balloon () =
  let h = List.nth harnesses 1 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  expect_error (Domain.set_memory dom 4096);
  vok (Domain.create dom);
  vok (Domain.set_memory dom 4096);
  let info = vok (Domain.get_info dom) in
  Alcotest.(check int) "current shrunk" 4096 info.Driver.di_memory_kib;
  Alcotest.(check int) "max unchanged" (8 * 1024) info.Driver.di_max_mem_kib;
  expect_verr Verror.Invalid_arg (Domain.set_memory dom (64 * 1024 * 1024));
  expect_verr Verror.Invalid_arg (Domain.set_memory dom 0)

let test_xen_dom0_visible () =
  let conn = vok (Connect.open_uri ("xen://" ^ fresh_name "xn" ^ "/")) in
  let active = vok (Connect.list_domains conn) in
  Alcotest.(check bool) "Domain-0 listed" true
    (List.exists (fun r -> r.Driver.dom_name = "Domain-0") active);
  let dom0 = vok (Domain.lookup_by_name conn "Domain-0") in
  expect_error (Domain.destroy dom0)

let test_xen_hypervisor_forgets_inactive () =
  let h = List.nth harnesses 2 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  Alcotest.(check int) "dom0 + guest" 2 (List.length (vok (Connect.list_domains conn)));
  vok (Domain.destroy dom);
  Alcotest.(check int) "only dom0 active" 1
    (List.length (vok (Connect.list_domains conn)));
  Alcotest.(check bool) "still defined" true
    (List.mem (Domain.name dom) (vok (Connect.list_defined_domains conn)));
  vok (Domain.create dom);
  Alcotest.(check bool) "restartable" true (state dom = Vm_state.Running)

let test_lxc_memory_resize_unbounded () =
  (* cgroup resize may exceed the configured memory (unlike a balloon). *)
  let h = List.nth harnesses 3 in
  let conn = connect h in
  let dom = define h conn (fresh_name "ct") in
  vok (Domain.set_memory dom (64 * 1024));
  let info = vok (Domain.get_info dom) in
  Alcotest.(check int) "cgroup limit" (64 * 1024) info.Driver.di_memory_kib

let test_lxc_no_migration () =
  let h = List.nth harnesses 3 in
  let conn = connect h in
  let dest = connect h in
  let dom = define h conn (fresh_name "ct") in
  vok (Domain.create dom);
  expect_verr Verror.Operation_unsupported (Domain.migrate dom ~dest ())

let test_esx_auth_failure () =
  match Connect.open_uri ("esx://root@" ^ fresh_name "esx" ^ "/?password=wrong") with
  | Error e -> Alcotest.(check bool) "auth_failed" true (e.Verror.code = Verror.Auth_failed)
  | Ok _ -> Alcotest.fail "bad password connected"

let test_esx_stateless_across_connections () =
  let host = fresh_name "esx" in
  let uri = Printf.sprintf "esx://root@%s/?password=esx" host in
  let conn1 = vok (Connect.open_uri uri) in
  let h = List.nth harnesses 4 in
  let name = fresh_name "vm" in
  let cfg = Vm_config.make ~os:h.os name in
  let _ = vok (Domain.define_xml conn1 (Vmm.Domxml.to_xml ~virt_type:"vmware" cfg)) in
  Connect.close conn1;
  let conn2 = vok (Connect.open_uri uri) in
  Alcotest.(check bool) "visible to new session" true
    (List.mem name (vok (Connect.list_defined_domains conn2)));
  let caps = vok (Connect.capabilities conn2) in
  Alcotest.(check bool) "stateless" false caps.Capabilities.stateful

let test_esx_close_logs_out () =
  let host = fresh_name "esx" in
  let uri = Printf.sprintf "esx://root@%s/?password=esx" host in
  let conn = vok (Connect.open_uri uri) in
  let esx = Drivers.Drv_esx.get_host host in
  Alcotest.(check int) "session open" 1 (Hvsim.Esx_host.session_count esx);
  Connect.close conn;
  Alcotest.(check int) "session closed" 0 (Hvsim.Esx_host.session_count esx)

let test_default_test_node_has_domain () =
  let conn = vok (Connect.open_uri "test:///default") in
  Alcotest.(check bool) "the canonical 'test' domain runs" true
    (List.exists (fun r -> r.Driver.dom_name = "test") (vok (Connect.list_domains conn)))

let test_capacity_exhaustion () =
  let h = List.hd harnesses in
  let conn = connect h in
  let cfg = Vm_config.make ~os:h.os ~memory_kib:(100 * 1024 * 1024) (fresh_name "huge") in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg)) in
  expect_verr Verror.Resource_exhausted (Domain.create dom)

let test_events_emitted_by_drivers () =
  let h = List.hd harnesses in
  let conn = connect h in
  let seen = ref [] in
  let _ =
    vok
      (Connect.subscribe_events conn (fun ev ->
           seen := ev.Ovirt.Events.lifecycle :: !seen))
  in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  vok (Domain.suspend dom);
  vok (Domain.resume dom);
  vok (Domain.destroy dom);
  vok (Domain.undefine dom);
  List.iter
    (fun e ->
      Alcotest.(check bool) (Ovirt.Events.lifecycle_name e) true (List.mem e !seen))
    Ovirt.Events.
      [ Ev_defined; Ev_started; Ev_suspended; Ev_resumed; Ev_stopped; Ev_undefined ]

(* --- managed save --------------------------------------------------- *)

let save_capable = [ List.nth harnesses 0; List.nth harnesses 1 ]
let save_incapable = [ List.nth harnesses 2; List.nth harnesses 3; List.nth harnesses 4 ]

let test_managed_save_cycle h () =
  let conn = connect h in
  let name = fresh_name "sv" in
  let dom = define h conn name in
  (* not running: save refused; no image yet *)
  expect_verr Verror.Operation_invalid (Domain.save dom);
  Alcotest.(check bool) "no image initially" false (vok (Domain.has_managed_save dom));
  vok (Domain.create dom);
  vok (Domain.save dom);
  Alcotest.(check bool) "stopped by save" true (state dom = Vm_state.Shutoff);
  Alcotest.(check bool) "image exists" true (vok (Domain.has_managed_save dom));
  (* restore brings it back and consumes the image *)
  vok (Domain.restore dom);
  Alcotest.(check bool) "running again" true (state dom = Vm_state.Running);
  Alcotest.(check bool) "image consumed" false (vok (Domain.has_managed_save dom));
  (* restore without an image refused *)
  vok (Domain.destroy dom);
  expect_verr Verror.Operation_invalid (Domain.restore dom)

let test_managed_save_memory_fidelity h () =
  let conn = connect h in
  let name = fresh_name "svf" in
  let dom = define h conn name in
  vok (Domain.create dom);
  (* dirty the guest, checkpoint, restore, compare *)
  let ops = vok (Ovirt.Connect.ops conn) in
  let ms = vok ((Option.get ops.Driver.migrate_begin) name) in
  let img = ms.Driver.mig_image in
  ms.Driver.mig_abort ();
  Vmm.Guest_image.dirty_randomly img ~rate:0.4 ~seed:3;
  let checksum = Vmm.Guest_image.checksum img in
  vok (Domain.save dom);
  vok (Domain.restore dom);
  let ms2 = vok ((Option.get ops.Driver.migrate_begin) name) in
  let img2 = ms2.Driver.mig_image in
  ms2.Driver.mig_abort ();
  Alcotest.(check bool) "memory restored bit-identically" true
    (Vmm.Guest_image.checksum img2 = checksum)

let test_managed_save_unsupported h () =
  let conn = connect h in
  let dom = define h conn (fresh_name "sv") in
  vok (Domain.create dom);
  expect_verr Verror.Operation_unsupported (Domain.save dom);
  expect_verr Verror.Operation_unsupported (Domain.has_managed_save dom)

let test_undefine_discards_save () =
  let h = List.hd harnesses in
  let conn = connect h in
  let name = fresh_name "sv" in
  let dom = define h conn name in
  vok (Domain.create dom);
  vok (Domain.save dom);
  vok (Domain.undefine dom);
  (* redefine: fresh identity, no stale image *)
  let dom2 = define h conn name in
  Alcotest.(check bool) "no stale image" false (vok (Domain.has_managed_save dom2))

let () =
  Alcotest.run "drivers"
    [
      ("uniform lifecycle", uniform_suite test_uniform_lifecycle);
      ("uniform error semantics", uniform_suite test_uniform_error_semantics);
      ("uniform duplicate define", uniform_suite test_uniform_duplicate_define);
      ("uniform lookup", uniform_suite test_uniform_lookup);
      ("uniform xml roundtrip", uniform_suite test_uniform_xml_roundtrip);
      ("uniform capabilities", uniform_suite test_uniform_capabilities);
      ("uniform shutdown", uniform_suite test_uniform_shutdown);
      ("wrong OS rejected", uniform_suite test_wrong_os_rejected);
      ( "qemu specifics",
        [
          quick "command-line format" test_qemu_argv_format;
          quick "domain id is the pid" test_qemu_domain_id_is_pid;
          quick "memory balloon" test_qemu_balloon;
        ] );
      ( "xen specifics",
        [
          quick "Domain-0 visible and protected" test_xen_dom0_visible;
          quick "hypervisor forgets inactive domains" test_xen_hypervisor_forgets_inactive;
        ] );
      ( "lxc specifics",
        [
          quick "cgroup resize beyond definition" test_lxc_memory_resize_unbounded;
          quick "no migration" test_lxc_no_migration;
        ] );
      ( "esx specifics",
        [
          quick "auth failure" test_esx_auth_failure;
          quick "stateless across connections" test_esx_stateless_across_connections;
          quick "close logs out" test_esx_close_logs_out;
        ] );
      ( "managed save",
        List.map (fun h -> quick h.label (test_managed_save_cycle h)) save_capable
        @ List.map
            (fun h -> quick (h.label ^ " fidelity") (test_managed_save_memory_fidelity h))
            save_capable
        @ List.map
            (fun h -> quick (h.label ^ " unsupported") (test_managed_save_unsupported h))
            save_incapable
        @ [ quick "undefine discards the image" test_undefine_discards_save ] );
      ( "misc",
        [
          quick "test:///default canonical domain" test_default_test_node_has_domain;
          quick "capacity exhaustion" test_capacity_exhaustion;
          quick "lifecycle events emitted" test_events_emitted_by_drivers;
        ] );
    ]
