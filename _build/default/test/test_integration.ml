(* Cross-cutting integration scenarios: the full client → RPC → daemon →
   driver → hypervisor stack under realistic workflows and concurrency. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Admin = Ovirt.Admin_client
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "intd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

(* Scenario 1: heterogeneous fleet managed uniformly — one code path
   drives test, qemu, xen, lxc and esx nodes through identical calls. *)
let test_heterogeneous_fleet () =
  let fleet =
    [
      ("test://" ^ fresh_name "f" ^ "/", "test", Vm_config.Hvm);
      ("qemu://" ^ fresh_name "f" ^ "/system", "kvm", Vm_config.Hvm);
      ("xen://" ^ fresh_name "f" ^ "/", "xen", Vm_config.Paravirt);
      ("lxc://" ^ fresh_name "f" ^ "/", "lxc", Vm_config.Container_exe);
      ("esx://root@" ^ fresh_name "f" ^ "/?password=esx", "vmware", Vm_config.Hvm);
    ]
  in
  let manage (uri, virt_type, os) =
    let conn = vok (Connect.open_uri uri) in
    let name = fresh_name "fleetvm" in
    let cfg = Vm_config.make ~os ~memory_kib:(8 * 1024) name in
    let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type cfg)) in
    vok (Domain.create dom);
    let info = vok (Domain.get_info dom) in
    vok (Domain.destroy dom);
    vok (Domain.undefine dom);
    Connect.close conn;
    info.Driver.di_vcpus
  in
  let vcpus = List.map manage fleet in
  Alcotest.(check (list int)) "identical code path on all five" [ 1; 1; 1; 1; 1 ] vcpus

(* Scenario 2: consolidation — start scattered, migrate everything onto
   one node, verify placement and host accounting. *)
let test_consolidation_flow () =
  let node_a = "qemu://" ^ fresh_name "rack" ^ "/system" in
  let node_b = "qemu://" ^ fresh_name "rack" ^ "/system" in
  let conn_a = vok (Connect.open_uri node_a) in
  let conn_b = vok (Connect.open_uri node_b) in
  let start conn name =
    let cfg = Vm_config.make ~memory_kib:(32 * 1024) name in
    let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg)) in
    vok (Domain.create dom);
    dom
  in
  let doms_b = List.init 3 (fun i -> start conn_b (fresh_name (Printf.sprintf "c%d" i))) in
  let migrated =
    List.map (fun dom -> fst (vok (Domain.migrate dom ~dest:conn_a ()))) doms_b
  in
  Alcotest.(check int) "node B empty" 0 (List.length (vok (Connect.list_domains conn_b)));
  Alcotest.(check int) "node A full" 3 (List.length (vok (Connect.list_domains conn_a)));
  List.iter
    (fun dom ->
      Alcotest.(check bool) "running after move" true
        (vok (Domain.get_state dom) = Vm_state.Running))
    migrated

(* Scenario 3: many concurrent remote clients hammer the daemon. *)
let test_concurrent_remote_clients () =
  with_daemon (fun daemon _ ->
      let errors = Atomic.make 0 in
      let total_ops = Atomic.make 0 in
      let workers =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                match
                  Connect.open_uri
                    (Printf.sprintf "test+unix://worker%d/?daemon=%s" i daemon)
                with
                | Error _ -> Atomic.incr errors
                | Ok conn ->
                  for _ = 1 to 25 do
                    (match Connect.list_domains conn with
                     | Ok _ -> Atomic.incr total_ops
                     | Error _ -> Atomic.incr errors);
                    let name = fresh_name "cvm" in
                    let cfg = Vm_config.make ~memory_kib:(4 * 1024) name in
                    (match
                       Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg)
                     with
                     | Ok dom ->
                       (match Domain.create dom with
                        | Ok () ->
                          Atomic.incr total_ops;
                          (match Domain.destroy dom with
                           | Ok () -> Atomic.incr total_ops
                           | Error _ -> Atomic.incr errors)
                        | Error _ -> Atomic.incr errors);
                       (match Domain.undefine dom with
                        | Ok () -> ()
                        | Error _ -> Atomic.incr errors)
                     | Error _ -> Atomic.incr errors)
                  done;
                  Connect.close conn)
              ())
      in
      List.iter Thread.join workers;
      Alcotest.(check int) "no errors under concurrency" 0 (Atomic.get errors);
      Alcotest.(check int) "every op accounted" (8 * 25 * 3) (Atomic.get total_ops))

(* Scenario 4: the autoscale workflow — limits hit, admin raises them,
   refused clients succeed afterwards. *)
let test_autoscale_flow () =
  let config =
    { quiet_config with Daemon_config.max_clients = 3; max_anonymous_clients = 3 }
  in
  with_daemon ~config (fun daemon _ ->
      let admin = vok (Admin.connect ~daemon ()) in
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let open_client () =
        Connect.open_uri (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "n") daemon)
      in
      let c1 = vok (open_client ()) in
      let c2 = vok (open_client ()) in
      let c3 = vok (open_client ()) in
      (match open_client () with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "limit not enforced");
      let limits = vok (Admin.client_limits srv) in
      Alcotest.(check int) "at the cap" limits.Admin.nclients_max
        limits.Admin.nclients_current;
      vok (Admin.set_client_limits srv ~max_clients:10 ~max_unauth:10 ());
      let c4 = vok (open_client ()) in
      Alcotest.(check bool) "fourth client fits after resize" true
        (Result.is_ok (Connect.list_domains c4));
      List.iter Connect.close [ c1; c2; c3; c4 ];
      Admin.close admin)

(* Scenario 5: troubleshooting workflow — raise logging at runtime,
   reproduce, verify evidence, restore. *)
let test_troubleshooting_flow () =
  with_daemon (fun daemon d ->
      let admin = vok (Admin.connect ~daemon ()) in
      let logger = Daemon.logger d in
      vok (Admin.set_logging_level admin Vlog.Debug);
      vok (Admin.set_logging_filters admin "3:daemon.server");
      vok (Admin.set_logging_outputs admin "1:file:/var/log/evidence.log");
      let conn =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "n") daemon))
      in
      let dom = vok (Domain.lookup_by_name conn "test") in
      (match Domain.create dom with Error _ -> () | Ok () -> Alcotest.fail "create of running succeeded");
      let evidence = Vlog.file_contents logger "/var/log/evidence.log" in
      Alcotest.(check bool) "failure recorded at runtime-raised verbosity" true
        (String.length evidence > 0);
      (* restore defaults *)
      vok (Admin.set_logging_level admin Vlog.Error);
      vok (Admin.set_logging_filters admin "");
      Connect.close conn;
      Admin.close admin)

(* Scenario 6: daemon serves both programs simultaneously under load. *)
let test_mgmt_and_admin_interleaved () =
  with_daemon (fun daemon _ ->
      let admin = vok (Admin.connect ~daemon ()) in
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let conn =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "n") daemon))
      in
      let stop = ref false in
      let churn =
        Thread.create
          (fun () ->
            while not !stop do
              ignore (Connect.list_domains conn)
            done)
          ()
      in
      for i = 1 to 20 do
        let tp = vok (Admin.threadpool_info srv) in
        Alcotest.(check bool) "pool sane" true (tp.Admin.tp_n_workers >= 1);
        vok (Admin.set_threadpool srv ~max_workers:(20 + (i mod 5)) ())
      done;
      stop := true;
      Thread.join churn;
      Connect.close conn;
      Admin.close admin)

(* Scenario 7: events from several clients' domains fan out correctly. *)
let test_event_isolation_between_connections () =
  with_daemon (fun daemon _ ->
      let open_node node =
        vok (Connect.open_uri (Printf.sprintf "test+unix://%s/?daemon=%s" node daemon))
      in
      let node_a = fresh_name "evA" and node_b = fresh_name "evB" in
      let conn_a = open_node node_a in
      let conn_b = open_node node_b in
      let seen_a = ref 0 and seen_b = ref 0 in
      let _ = vok (Connect.subscribe_events conn_a (fun _ -> incr seen_a)) in
      let _ = vok (Connect.subscribe_events conn_b (fun _ -> incr seen_b)) in
      let cfg = Vm_config.make ~memory_kib:(4 * 1024) (fresh_name "evvm") in
      let dom = vok (Domain.define_xml conn_a (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
      vok (Domain.create dom);
      ignore (eventually (fun () -> !seen_a >= 2));
      Alcotest.(check bool) "a saw its events" true (!seen_a >= 2);
      Alcotest.(check int) "b saw nothing (different node)" 0 !seen_b;
      Connect.close conn_a;
      Connect.close conn_b)

(* Scenario 7b: host maintenance — save every running domain, verify the
   host is quiescent, restore everything bit-identically. *)
let test_host_maintenance_flow () =
  let conn = vok (Connect.open_uri ("qemu://" ^ fresh_name "mnt" ^ "/system")) in
  let doms =
    List.init 3 (fun i ->
        let cfg =
          Vm_config.make ~memory_kib:((i + 1) * 32 * 1024) (fresh_name "svc")
        in
        let dom =
          vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg))
        in
        vok (Domain.create dom);
        dom)
  in
  let checksum dom =
    let ops = vok (Connect.ops conn) in
    let ms = vok ((Option.get ops.Driver.migrate_begin) (Domain.name dom)) in
    Vmm.Guest_image.dirty_randomly ms.Driver.mig_image ~rate:0.1
      ~seed:(Hashtbl.hash (Domain.name dom));
    let sum = Vmm.Guest_image.checksum ms.Driver.mig_image in
    ms.Driver.mig_abort ();
    sum
  in
  let sums = List.map checksum doms in
  List.iter (fun dom -> vok (Domain.save dom)) doms;
  Alcotest.(check int) "host quiescent" 0
    (List.length (vok (Connect.list_domains conn)));
  List.iter (fun dom -> vok (Domain.restore dom)) doms;
  Alcotest.(check int) "all back" 3 (List.length (vok (Connect.list_domains conn)));
  List.iter2
    (fun dom before ->
      let ops = vok (Connect.ops conn) in
      let ms = vok ((Option.get ops.Driver.migrate_begin) (Domain.name dom)) in
      let after = Vmm.Guest_image.checksum ms.Driver.mig_image in
      ms.Driver.mig_abort ();
      Alcotest.(check bool) "memory identical" true (before = after))
    doms sums

(* Scenario 8: CLI plumbing — the ovirsh command table executes against a
   live connection, end to end. *)
let test_cli_command_parsing () =
  let args = sok (Ovcli.parse_args [ "srv"; "--max-workers"; "40"; "--force" ]) in
  Alcotest.(check (list string)) "positional" [ "srv" ] args.Ovcli.positional;
  Alcotest.(check (option string)) "flag" (Some "40") (Ovcli.flag args "max-workers");
  Alcotest.(check bool) "switch" true (Ovcli.has_switch args "force");
  Alcotest.(check bool) "int flag" true (Ovcli.int_flag args "max-workers" = Ok (Some 40));
  (match Ovcli.int_flag (sok (Ovcli.parse_args [ "--n"; "x" ])) "n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "non-integer flag accepted");
  Alcotest.(check (list string)) "quoted words" [ "a b"; "c" ]
    (Ovcli.split_words "\"a b\" c")

let test_cli_run_one () =
  let ran = ref None in
  let commands =
    [
      Ovcli.
        {
          name = "greet";
          group = "G";
          args_help = "<who>";
          summary = "greet someone";
          handler =
            (fun args ->
              ran := Some args.Ovcli.positional;
              Ok "hello");
        };
    ]
  in
  (match Ovcli.run_one ~commands ~program:"t" [ "greet"; "world" ] with
   | Ok "hello" -> ()
   | Ok other -> Alcotest.failf "unexpected output %s" other
   | Error e -> Alcotest.fail e);
  Alcotest.(check (option (list string))) "args passed" (Some [ "world" ]) !ran;
  (match Ovcli.run_one ~commands ~program:"t" [ "nope" ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown command accepted");
  match Ovcli.run_one ~commands ~program:"t" [ "help" ] with
  | Ok text -> Alcotest.(check bool) "help mentions command" true
                 (String.length text > 0)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          quick "heterogeneous fleet, one code path" test_heterogeneous_fleet;
          quick "consolidation via migration" test_consolidation_flow;
          quick "concurrent remote clients" test_concurrent_remote_clients;
          quick "autoscale workflow" test_autoscale_flow;
          quick "troubleshooting workflow" test_troubleshooting_flow;
          quick "management + admin interleaved" test_mgmt_and_admin_interleaved;
          quick "event isolation" test_event_isolation_between_connections;
          quick "host maintenance via managed save" test_host_maintenance_flow;
        ] );
      ( "cli",
        [
          quick "argument parsing" test_cli_command_parsing;
          quick "command dispatch" test_cli_run_one;
        ] );
    ]
