(* Intrusive (in-guest agent) management baseline: deployment cost,
   availability, interference — and the contrast with the non-intrusive
   hypervisor path. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Agent = Ovirt.Guest_agent_client
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state

let () = Ovirt.initialize ()

let fresh_running_domain ?(memory_kib = 16 * 1024) () =
  let conn = vok (Connect.open_uri ("test://" ^ fresh_name "ag" ^ "/")) in
  let name = fresh_name "vm" in
  let cfg = Vm_config.make ~memory_kib name in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
  vok (Domain.create dom);
  (conn, name, dom)

let test_supported_drivers () =
  let test_conn = vok (Connect.open_uri ("test://" ^ fresh_name "s" ^ "/")) in
  Alcotest.(check bool) "test supports agents" true (Agent.supported test_conn);
  let qemu_conn = vok (Connect.open_uri ("qemu://" ^ fresh_name "s" ^ "/system")) in
  Alcotest.(check bool) "qemu supports agents" true (Agent.supported qemu_conn);
  let esx_conn =
    vok (Connect.open_uri ("esx://root@" ^ fresh_name "s" ^ "/?password=esx"))
  in
  Alcotest.(check bool) "esx has no agent channel" false (Agent.supported esx_conn);
  let xen_conn = vok (Connect.open_uri ("xen://" ^ fresh_name "s" ^ "/")) in
  Alcotest.(check bool) "xen has no agent channel" false (Agent.supported xen_conn)

let test_unsupported_driver_errors () =
  let esx_conn =
    vok (Connect.open_uri ("esx://root@" ^ fresh_name "s" ^ "/?password=esx"))
  in
  expect_verr Verror.Operation_unsupported (Agent.install esx_conn "anything");
  expect_verr Verror.Operation_unsupported (Agent.ping esx_conn "anything")

let test_install_then_operate () =
  let conn, name, _dom = fresh_running_domain () in
  (* Before install: the channel exists, the agent does not. *)
  expect_verr Verror.Operation_invalid (Agent.ping conn name);
  vok (Agent.install conn name);
  vok (Agent.ping conn name);
  let info = vok (Agent.guest_info conn name) in
  Alcotest.(check int) "guest-reported memory" (16 * 1024) info.Agent.gi_memory_kib;
  Alcotest.(check string) "guest-reported state" "running" info.Agent.gi_state;
  let code = vok (Agent.exec conn name ~cmd:"uname -a") in
  Alcotest.(check int) "exit code" 0 code;
  (* double install refused *)
  expect_verr Verror.Operation_invalid (Agent.install conn name)

let test_unavailable_when_paused_or_off () =
  let conn, name, dom = fresh_running_domain () in
  vok (Agent.install conn name);
  vok (Domain.suspend dom);
  expect_verr Verror.Operation_invalid (Agent.ping conn name);
  (* The non-intrusive path keeps working on the very same domain. *)
  Alcotest.(check bool) "hypervisor still answers" true
    (vok (Domain.get_state dom) = Vm_state.Paused);
  vok (Domain.resume dom);
  vok (Agent.ping conn name);
  vok (Domain.destroy dom);
  (* A stopped guest has no agent at all. *)
  expect_verr Verror.Operation_invalid (Agent.ping conn name);
  Alcotest.(check bool) "hypervisor still answers when off" true
    (vok (Domain.get_state dom) = Vm_state.Shutoff)

let test_agent_shutdown_goes_through_driver () =
  let conn, name, dom = fresh_running_domain () in
  vok (Agent.install conn name);
  vok (Agent.shutdown conn name);
  let off = eventually (fun () -> vok (Domain.get_state dom) = Vm_state.Shutoff) in
  Alcotest.(check bool) "guest shut down via agent" true off

let test_agent_lost_on_restart () =
  (* Fresh boot, fresh memory: the agent install does not survive. *)
  let conn, name, dom = fresh_running_domain () in
  vok (Agent.install conn name);
  vok (Domain.destroy dom);
  vok (Domain.create dom);
  expect_verr Verror.Operation_invalid (Agent.ping conn name);
  vok (Agent.install conn name);
  vok (Agent.ping conn name)

let test_interference_visible_in_migration () =
  (* Agent activity dirties guest pages; a migration right after shows a
     larger remainder than for an idle guest. *)
  let measure ~with_agent =
    let conn, name, dom = fresh_running_domain ~memory_kib:(64 * 1024) () in
    let dst = vok (Connect.open_uri ("test://" ^ fresh_name "agd" ^ "/")) in
    if with_agent then begin
      vok (Agent.install conn name);
      for _ = 1 to 50 do
        vok (Agent.ping conn name)
      done
    end;
    let _, stats = vok (Domain.migrate dom ~dest:dst ()) in
    stats.Ovirt.Domain.pages_transferred
  in
  let idle = measure ~with_agent:false in
  let busy = measure ~with_agent:true in
  Alcotest.(check bool) "agent-managed guest moved more pages" true (busy >= idle)

let test_qemu_agent_parity () =
  (* The same management surface works on the qemu driver. *)
  let conn = vok (Connect.open_uri ("qemu://" ^ fresh_name "qa" ^ "/system")) in
  let name = fresh_name "vm" in
  let cfg = Vm_config.make ~memory_kib:(16 * 1024) name in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg)) in
  vok (Domain.create dom);
  vok (Agent.install conn name);
  let info = vok (Agent.guest_info conn name) in
  Alcotest.(check int) "memory via agent" (16 * 1024) info.Agent.gi_memory_kib;
  vok (Agent.shutdown conn name);
  let off = eventually (fun () -> vok (Domain.get_state dom) = Vm_state.Shutoff) in
  Alcotest.(check bool) "qemu guest shut down via agent" true off

let test_both_paths_agree_on_memory () =
  (* The agent's answer and the hypervisor's answer must be consistent —
     the uniform-API claim, seen from both sides. *)
  let conn, name, dom = fresh_running_domain ~memory_kib:(32 * 1024) () in
  vok (Agent.install conn name);
  let agent_info = vok (Agent.guest_info conn name) in
  let hv_info = vok (Domain.get_info dom) in
  Alcotest.(check int) "same memory" hv_info.Ovirt.Driver.di_max_mem_kib
    agent_info.Agent.gi_memory_kib

let () =
  Alcotest.run "agent"
    [
      ( "support matrix",
        [
          quick "driver support" test_supported_drivers;
          quick "unsupported driver errors" test_unsupported_driver_errors;
        ] );
      ( "lifecycle",
        [
          quick "install then operate" test_install_then_operate;
          quick "unavailable when paused or off" test_unavailable_when_paused_or_off;
          quick "agent-mediated shutdown" test_agent_shutdown_goes_through_driver;
          quick "lost on restart" test_agent_lost_on_restart;
        ] );
      ( "intrusiveness",
        [
          quick "interference visible in migration" test_interference_visible_in_migration;
          quick "qemu parity" test_qemu_agent_parity;
          quick "both paths agree" test_both_paths_agree_on_memory;
        ] );
    ]
