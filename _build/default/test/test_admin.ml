(* Administration interface: server enumeration, workerpool tuning,
   client limits/identity/disconnect, logging control — plus the
   equivalence-partitioning combinational suites (T1-T4) covering the
   setter input domains, mirroring the published test design for this
   interface. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Admin = Ovirt.Admin_client
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Tp = Ovrpc.Typed_params
module Ap = Protocol.Admin_protocol
module Transport = Ovnet.Transport

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_admin ?(config = quiet_config) f =
  let name = fresh_name "admd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect
    ~finally:(fun () -> Daemon.stop daemon)
    (fun () ->
      let admin = vok (Admin.connect ~daemon:name ()) in
      Fun.protect ~finally:(fun () -> Admin.close admin) (fun () -> f name daemon admin))

(* --- basics -------------------------------------------------------------- *)

let test_root_only () =
  with_admin (fun name _ _ ->
      let identity =
        Transport.{ uid = 1000; gid = 1000; pid = 5; username = "eve"; groupname = "eve" }
      in
      match Admin.connect ~daemon:name ~identity () with
      | Error e ->
        Alcotest.(check bool) "refused" true
          (e.Verror.code = Verror.Auth_failed || e.Verror.code = Verror.Rpc_failure)
      | Ok _ -> Alcotest.fail "non-root admin connection accepted")

let test_list_servers () =
  with_admin (fun _ _ admin ->
      Alcotest.(check (list string)) "both servers" [ "libvirtd"; "admin" ]
        (vok (Admin.list_servers admin));
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      Alcotest.(check string) "name" "libvirtd" (Admin.server_name srv);
      expect_verr Verror.No_server (Admin.lookup_server admin "nonexistent"))

let test_uptime () =
  with_admin (fun _ _ admin ->
      let up = vok (Admin.daemon_uptime_s admin) in
      Alcotest.(check bool) "non-negative" true (up >= 0L))

(* --- workerpool ----------------------------------------------------------- *)

let test_threadpool_info_matches_config () =
  with_admin (fun _ _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let tp = vok (Admin.threadpool_info srv) in
      Alcotest.(check int) "min" 5 tp.Admin.tp_min_workers;
      Alcotest.(check int) "max" 20 tp.Admin.tp_max_workers;
      Alcotest.(check int) "current at min" 5 tp.Admin.tp_n_workers;
      Alcotest.(check int) "prio" 5 tp.Admin.tp_prio_workers;
      Alcotest.(check int) "queue empty" 0 tp.Admin.tp_job_queue_depth)

let test_threadpool_resize_applies () =
  with_admin (fun _ daemon admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      vok (Admin.set_threadpool srv ~min_workers:8 ~max_workers:32 ~prio_workers:3 ());
      let tp = vok (Admin.threadpool_info srv) in
      Alcotest.(check int) "max updated" 32 tp.Admin.tp_max_workers;
      Alcotest.(check int) "min updated" 8 tp.Admin.tp_min_workers;
      (* The real pool grew to the new minimum. *)
      let pool =
        Ovirt.Server_obj.pool (Option.get (Daemon.find_server daemon "libvirtd"))
      in
      let grew = eventually (fun () -> (Threadpool.stats pool).Threadpool.n_workers >= 8) in
      Alcotest.(check bool) "workers spawned" true grew;
      let prio_ok =
        eventually (fun () -> (Threadpool.stats pool).Threadpool.prio_workers = 3)
      in
      Alcotest.(check bool) "prio adjusted" true prio_ok)

let test_threadpool_partial_update () =
  with_admin (fun _ _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      vok (Admin.set_threadpool srv ~max_workers:25 ());
      let tp = vok (Admin.threadpool_info srv) in
      Alcotest.(check int) "max changed" 25 tp.Admin.tp_max_workers;
      Alcotest.(check int) "min untouched" 5 tp.Admin.tp_min_workers)

(* --- client management ----------------------------------------------------- *)

let mgmt_uri ~daemon ?(transport = "unix") () =
  Printf.sprintf "test+%s://%s/?daemon=%s" transport (fresh_name "n") daemon

let test_client_listing_and_identity () =
  with_admin (fun daemon _ admin ->
      let c_unix = vok (Connect.open_uri (mgmt_uri ~daemon ())) in
      let c_tls = vok (Connect.open_uri (mgmt_uri ~daemon ~transport:"tls" ())) in
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let clients = vok (Admin.list_clients srv) in
      Alcotest.(check int) "two clients" 2 (List.length clients);
      let kinds = List.map (fun c -> c.Admin.cl_transport) clients in
      Alcotest.(check bool) "one unix one tls" true
        (List.mem Transport.Unix_sock kinds && List.mem Transport.Tls kinds);
      (* Identity of the unix client carries credentials; tls carries an
         address and a certificate name. *)
      let unix_client =
        List.find (fun c -> c.Admin.cl_transport = Transport.Unix_sock) clients
      in
      let params = vok (Admin.client_identity srv unix_client.Admin.cl_id) in
      Alcotest.(check (option string)) "username" (Some "root")
        (Tp.find_string params Ap.client_info_unix_user_name);
      Alcotest.(check (option bool)) "readonly flag" (Some false)
        (Tp.find_bool params Ap.client_info_readonly);
      (* activity tracking: a call moves last_activity forward *)
      let activity params =
        match List.assoc_opt "last_activity" params with
        | Some (Tp.P_llong t) -> t
        | _ -> Alcotest.fail "last_activity missing"
      in
      let before = activity params in
      Thread.delay 1.1;
      ignore (vok (Connect.list_domains c_unix));
      let params' = vok (Admin.client_identity srv unix_client.Admin.cl_id) in
      Alcotest.(check bool) "activity advanced" true (activity params' > before);
      let tls_client =
        List.find (fun c -> c.Admin.cl_transport = Transport.Tls) clients
      in
      let tparams = vok (Admin.client_identity srv tls_client.Admin.cl_id) in
      Alcotest.(check bool) "sock addr present" true
        (Tp.find_string tparams Ap.client_info_sock_addr <> None);
      Alcotest.(check bool) "x509 dname present" true
        (Tp.find_string tparams Ap.client_info_x509_dname <> None);
      Connect.close c_unix;
      Connect.close c_tls)

let test_client_limits_roundtrip () =
  with_admin (fun daemon _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let limits = vok (Admin.client_limits srv) in
      Alcotest.(check int) "default max" 120 limits.Admin.nclients_max;
      Alcotest.(check int) "none connected" 0 limits.Admin.nclients_current;
      let conn = vok (Connect.open_uri (mgmt_uri ~daemon ())) in
      let limits2 = vok (Admin.client_limits srv) in
      Alcotest.(check int) "one connected" 1 limits2.Admin.nclients_current;
      vok (Admin.set_client_limits srv ~max_clients:150 ~max_unauth:30 ());
      let limits3 = vok (Admin.client_limits srv) in
      Alcotest.(check int) "max raised" 150 limits3.Admin.nclients_max;
      Alcotest.(check int) "unauth raised" 30 limits3.Admin.nclients_unauth_max;
      Connect.close conn)

let test_client_disconnect () =
  with_admin (fun daemon _ admin ->
      let conn = vok (Connect.open_uri (mgmt_uri ~daemon ())) in
      Alcotest.(check bool) "client works" true
        (Result.is_ok (Connect.list_domains conn));
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      let victim = List.hd (vok (Admin.list_clients srv)) in
      vok (Admin.client_disconnect srv victim.Admin.cl_id);
      let dead =
        eventually (fun () ->
            match Connect.list_domains conn with Error _ -> true | Ok _ -> false)
      in
      Alcotest.(check bool) "victim's calls fail" true dead;
      expect_verr Verror.No_client (Admin.client_disconnect srv victim.Admin.cl_id))

let test_client_info_unknown_id () =
  with_admin (fun _ _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      expect_verr Verror.No_client (Admin.client_identity srv 424242L))

(* --- logging ---------------------------------------------------------------- *)

let test_logging_level_roundtrip () =
  with_admin (fun _ _ admin ->
      Alcotest.(check bool) "default error" true
        (vok (Admin.get_logging_level admin) = Vlog.Error);
      vok (Admin.set_logging_level admin Vlog.Debug);
      Alcotest.(check bool) "now debug" true
        (vok (Admin.get_logging_level admin) = Vlog.Debug))

let test_logging_filters_roundtrip () =
  with_admin (fun _ _ admin ->
      Alcotest.(check string) "empty initially" "" (vok (Admin.get_logging_filters admin));
      vok (Admin.set_logging_filters admin "3:util.object 4:rpc");
      Alcotest.(check string) "defined" "3:util.object 4:rpc"
        (vok (Admin.get_logging_filters admin));
      vok (Admin.set_logging_filters admin "");
      Alcotest.(check string) "cleared" "" (vok (Admin.get_logging_filters admin)))

let test_logging_outputs_roundtrip () =
  with_admin (fun _ daemon admin ->
      ignore daemon;
      vok (Admin.set_logging_outputs admin "1:file:/var/log/a.log 3:syslog:ovirtd");
      Alcotest.(check string) "defined" "1:file:/var/log/a.log 3:syslog:ovirtd"
        (vok (Admin.get_logging_outputs admin)))

let test_logging_changes_take_effect () =
  with_admin (fun _ daemon admin ->
      let logger = Daemon.logger daemon in
      vok (Admin.set_logging_level admin Vlog.Debug);
      vok (Admin.set_logging_outputs admin "1:file:/var/log/live.log");
      Vlog.logf logger ~module_:"probe" Vlog.Debug "probe line";
      Alcotest.(check bool) "line landed in the new output" true
        (String.length (Vlog.file_contents logger "/var/log/live.log") > 0))

(* ------------------------------------------------------------------------- *)
(* Equivalence-partitioning combinational suites.

   Notation follows the published design: connection classes A (active),
   B (closed), C (null — unrepresentable here, covered by B); parameter
   classes are numbered per table.  Each invalid class gets its own test
   case; valid classes combine into the success cases. *)
(* ------------------------------------------------------------------------- *)

(* T1: virAdmConnectSetLoggingLevel — level range 1-4 valid, <1 / >4 invalid. *)
let t1_cases = [ (`A, 1); (`A, 0); (`A, 5); (`B, 1) ]

let test_t1_logging_level () =
  with_admin (fun name _ admin ->
      List.iter
        (fun (conn_class, level) ->
          match conn_class with
          | `A ->
            let result = Admin.set_logging_level_raw admin level in
            if level >= 1 && level <= 4 then vok result
            else expect_verr Verror.Invalid_arg result
          | `B ->
            let closed = vok (Admin.connect ~daemon:name ()) in
            Admin.close closed;
            expect_verr Verror.Rpc_failure
              (Admin.set_logging_level_raw closed level))
        t1_cases)

(* T2: virAdmConnectSetLoggingFilters — the input characteristic classes:
   empty string (valid, clears), NULL (unrepresentable), no level prefix,
   level out of range (both sides), missing colon, empty match string,
   single filter, multiple space-delimited filters. *)
let t2_cases =
  [
    ("", true);
    ("3:util.object", true);
    ("3:util.object 4:rpc 1:event", true);
    ("util.object", false);
    ("x:util.object", false);
    ("0:util.object", false);
    ("5:util.object", false);
    ("3:", false);
    ("3:a 9:b", false);
  ]

let test_t2_logging_filters () =
  with_admin (fun name _ admin ->
      List.iter
        (fun (filters, valid) ->
          let result = Admin.set_logging_filters admin filters in
          if valid then vok result else expect_verr Verror.Invalid_arg result)
        t2_cases;
      (* closed-connection classes for the two valid shapes *)
      let closed = vok (Admin.connect ~daemon:name ()) in
      Admin.close closed;
      expect_verr Verror.Rpc_failure (Admin.set_logging_filters closed "3:a");
      expect_verr Verror.Rpc_failure (Admin.set_logging_filters closed "3:a 4:b"))

(* T3: virAdmConnectSetLoggingOutputs — adds output-kind and
   additional-data characteristics on top of T2's. *)
let t3_cases =
  [
    ("", true);
    ("2:stderr", true);
    ("1:file:/var/log/d.log", true);
    ("3:syslog:ovirtd", true);
    ("4:journald", true);
    ("1:file:/var/log/a.log 3:syslog:x 2:stderr", true);
    ("stderr", false);
    ("x:stderr", false);
    ("0:stderr", false);
    ("9:stderr", false);
    ("1:randomsink", false);
    ("1:file", false);
    ("1:file:relative", false);
    ("1:syslog", false);
    ("1:stderr:extra", false);
    ("1:journald:extra", false);
  ]

let test_t3_logging_outputs () =
  with_admin (fun _ _ admin ->
      List.iter
        (fun (outputs, valid) ->
          let result = Admin.set_logging_outputs admin outputs in
          if valid then vok result else expect_verr Verror.Invalid_arg result)
        t3_cases)

(* T4: virAdmServerSetThreadPoolParameters — server object classes
   (J valid, K closed connection, L unknown server), params classes
   (valid fields / unknown field / wrong type / read-only field /
   min>max inconsistency), nparams empty. *)
let test_t4_threadpool_params () =
  with_admin (fun name _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      (* (J, valid, a) *)
      vok
        (Admin.set_threadpool_params srv
           [ Tp.uint Ap.threadpool_workers_min 2; Tp.uint Ap.threadpool_workers_max 30 ]);
      (* (J, unknown field, a) *)
      expect_verr Verror.Invalid_arg
        (Admin.set_threadpool_params srv [ Tp.uint "randomField" 1 ]);
      (* (J, wrong type, a) *)
      expect_verr Verror.Rpc_failure
        (Admin.set_threadpool_params srv
           [ Tp.string Ap.threadpool_workers_max "twenty" ]);
      (* (J, read-only field, a) *)
      expect_verr Verror.Invalid_arg
        (Admin.set_threadpool_params srv [ Tp.uint Ap.threadpool_workers_free 3 ]);
      expect_verr Verror.Invalid_arg
        (Admin.set_threadpool_params srv [ Tp.uint Ap.threadpool_workers_current 3 ]);
      expect_verr Verror.Invalid_arg
        (Admin.set_threadpool_params srv [ Tp.uint Ap.threadpool_job_queue_depth 0 ]);
      (* (J, maxWorkers < minWorkers, a) *)
      expect_verr Verror.Invalid_arg
        (Admin.set_threadpool_params srv
           [ Tp.uint Ap.threadpool_workers_min 10; Tp.uint Ap.threadpool_workers_max 5 ]);
      (* (J, empty container, a) *)
      expect_verr Verror.Invalid_arg (Admin.set_threadpool_params srv []);
      (* (L, valid, a): unknown server *)
      expect_verr Verror.No_server (Admin.lookup_server admin "ghost");
      (* (K, valid, a): closed connection *)
      let closed = vok (Admin.connect ~daemon:name ()) in
      let csrv = vok (Admin.lookup_server closed "libvirtd") in
      Admin.close closed;
      expect_verr Verror.Rpc_failure
        (Admin.set_threadpool_params csrv [ Tp.uint Ap.threadpool_workers_max 25 ]))

(* Same partitioning applied to the client-limit setter. *)
let test_client_limits_params_validation () =
  with_admin (fun _ _ admin ->
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      expect_verr Verror.Invalid_arg
        (Admin.set_client_limits_params srv [ Tp.uint "bogus" 1 ]);
      expect_verr Verror.Invalid_arg
        (Admin.set_client_limits_params srv [ Tp.uint Ap.server_clients_current 5 ]);
      expect_verr Verror.Invalid_arg
        (Admin.set_client_limits_params srv
           [ Tp.uint Ap.server_clients_unauth_current 5 ]);
      expect_verr Verror.Invalid_arg (Admin.set_client_limits_params srv []);
      (* unauth > max is inconsistent *)
      expect_verr Verror.Invalid_arg
        (Admin.set_client_limits_params srv
           [
             Tp.uint Ap.server_clients_max 10;
             Tp.uint Ap.server_clients_unauth_max 20;
           ]);
      vok
        (Admin.set_client_limits_params srv
           [ Tp.uint Ap.server_clients_max 99; Tp.uint Ap.server_clients_unauth_max 9 ]))

(* Admin interface keeps working while the management pool is wedged —
   the raison d'être of priority workers. *)
let test_admin_responsive_under_wedged_pool () =
  with_admin (fun daemon d admin ->
      let pool =
        Ovirt.Server_obj.pool (Option.get (Daemon.find_server d "libvirtd"))
      in
      (* Wedge every ordinary worker of the management server. *)
      let release = Mutex.create () in
      Mutex.lock release;
      let stats = Threadpool.stats pool in
      for _ = 1 to stats.Threadpool.max_workers do
        Threadpool.push pool (fun () ->
            Mutex.lock release;
            Mutex.unlock release)
      done;
      ignore daemon;
      (* Admin still answers: its own server has its own pool. *)
      let tp = vok (Admin.threadpool_info (vok (Admin.lookup_server admin "libvirtd"))) in
      Alcotest.(check bool) "queue visible while wedged" true
        (tp.Admin.tp_free_workers = 0);
      vok (Admin.set_threadpool (vok (Admin.lookup_server admin "libvirtd"))
             ~max_workers:64 ());
      Mutex.unlock release;
      Threadpool.drain pool)

let () =
  Alcotest.run "admin"
    [
      ( "basics",
        [
          quick "root only" test_root_only;
          quick "list servers" test_list_servers;
          quick "uptime" test_uptime;
        ] );
      ( "workerpool",
        [
          quick "info matches config" test_threadpool_info_matches_config;
          quick "resize applies to the live pool" test_threadpool_resize_applies;
          quick "partial update" test_threadpool_partial_update;
        ] );
      ( "clients",
        [
          quick "listing and identity" test_client_listing_and_identity;
          quick "limits roundtrip" test_client_limits_roundtrip;
          quick "forceful disconnect" test_client_disconnect;
          quick "unknown id" test_client_info_unknown_id;
        ] );
      ( "logging",
        [
          quick "level roundtrip" test_logging_level_roundtrip;
          quick "filters roundtrip" test_logging_filters_roundtrip;
          quick "outputs roundtrip" test_logging_outputs_roundtrip;
          quick "changes take effect" test_logging_changes_take_effect;
        ] );
      ( "equivalence partitions",
        [
          quick "T1: logging level" test_t1_logging_level;
          quick "T2: logging filters" test_t2_logging_filters;
          quick "T3: logging outputs" test_t3_logging_outputs;
          quick "T4: threadpool parameters" test_t4_threadpool_params;
          quick "client limits validation" test_client_limits_params_validation;
        ] );
      ( "resilience",
        [ quick "admin responsive while pool wedged" test_admin_responsive_under_wedged_pool ] );
    ]
