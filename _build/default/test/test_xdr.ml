(* XDR codec: unit cases for the wire format's fixed points, property
   tests for roundtrips, and malformation rejection. *)

open Testutil

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let test_int_wire_format () =
  Alcotest.(check string) "1 encodes big-endian" "00000001"
    (hex (Xdr.encode Xdr.enc_int 1));
  Alcotest.(check string) "-1 encodes as ffffffff" "ffffffff"
    (hex (Xdr.encode Xdr.enc_int (-1)));
  Alcotest.(check string) "min int32" "80000000"
    (hex (Xdr.encode Xdr.enc_int (-0x8000_0000)))

let test_int_range_check () =
  Alcotest.check_raises "too large" (Xdr.Error "enc_int: 2147483648 out of int32 range")
    (fun () -> ignore (Xdr.encode Xdr.enc_int 0x8000_0000));
  Alcotest.check_raises "uint negative"
    (Xdr.Error "enc_uint: -1 out of uint32 range") (fun () ->
      ignore (Xdr.encode Xdr.enc_uint (-1)))

let test_string_padding () =
  (* length word + bytes + zero padding to 4 *)
  Alcotest.(check string) "abc pads to one zero" "00000003616263 00"
    (let s = hex (Xdr.encode Xdr.enc_string "abc") in
     String.sub s 0 14 ^ " " ^ String.sub s 14 2);
  Alcotest.(check int) "abcd needs no padding" 8
    (String.length (Xdr.encode Xdr.enc_string "abcd"))

let test_nonzero_padding_rejected () =
  (* "abc" with a corrupted pad byte *)
  let wire = Bytes.of_string (Xdr.encode Xdr.enc_string "abc") in
  Bytes.set wire 7 'X';
  match Xdr.decode Xdr.dec_string (Bytes.to_string wire) with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "corrupted padding accepted"

let test_bool_strictness () =
  Alcotest.(check bool) "true roundtrip" true
    (Xdr.decode Xdr.dec_bool (Xdr.encode Xdr.enc_bool true));
  match Xdr.decode Xdr.dec_bool (Xdr.encode Xdr.enc_uint 2) with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "bool 2 accepted"

let test_truncation_rejected () =
  let wire = Xdr.encode Xdr.enc_string "hello world" in
  for cut = 0 to String.length wire - 1 do
    match Xdr.decode Xdr.dec_string (String.sub wire 0 cut) with
    | exception Xdr.Error _ -> ()
    | _ -> Alcotest.failf "truncation at %d accepted" cut
  done

let test_trailing_garbage_rejected () =
  let wire = Xdr.encode Xdr.enc_uint 7 ^ "\000" in
  match Xdr.decode Xdr.dec_uint wire with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

let test_array_count_bound () =
  (* A count far beyond the payload must be rejected up front. *)
  let wire = Xdr.encode Xdr.enc_uint 1_000_000 in
  match Xdr.decode (fun d -> Xdr.dec_array d Xdr.dec_uint) wire with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "oversized array count accepted"

let test_fixed_opaque () =
  let wire = Xdr.encode (fun e v -> Xdr.enc_fixed_opaque e 6 v) "abcdef" in
  Alcotest.(check int) "6 bytes pad to 8" 8 (String.length wire);
  Alcotest.(check string) "roundtrip" "abcdef"
    (Xdr.decode (fun d -> Xdr.dec_fixed_opaque d 6) wire);
  match Xdr.encode (fun e v -> Xdr.enc_fixed_opaque e 4 v) "abcdef" with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let test_option () =
  let enc e v = Xdr.enc_option e Xdr.enc_string v in
  let dec d = Xdr.dec_option d Xdr.dec_string in
  Alcotest.(check (option string)) "some" (Some "x") (Xdr.decode dec (Xdr.encode enc (Some "x")));
  Alcotest.(check (option string)) "none" None (Xdr.decode dec (Xdr.encode enc None))

let test_hyper_extremes () =
  List.iter
    (fun v ->
      Alcotest.(check int64) "hyper roundtrip" v
        (Xdr.decode Xdr.dec_hyper (Xdr.encode Xdr.enc_hyper v)))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xdeadbeefL ]

let prop_int_roundtrip =
  qcheck_case "int32 roundtrip" QCheck.(int_range (-0x8000_0000) 0x7fff_ffff)
    (fun v -> Xdr.decode Xdr.dec_int (Xdr.encode Xdr.enc_int v) = v)

let prop_uint_roundtrip =
  qcheck_case "uint32 roundtrip" QCheck.(int_bound 0xffff_ffff)
    (fun v -> Xdr.decode Xdr.dec_uint (Xdr.encode Xdr.enc_uint v) = v)

let prop_hyper_roundtrip =
  qcheck_case "hyper roundtrip" QCheck.int64
    (fun v -> Xdr.decode Xdr.dec_hyper (Xdr.encode Xdr.enc_hyper v) = v)

let prop_string_roundtrip =
  qcheck_case "string roundtrip" QCheck.string
    (fun s -> Xdr.decode Xdr.dec_string (Xdr.encode Xdr.enc_string s) = s)

let prop_double_roundtrip =
  qcheck_case "double roundtrip" QCheck.float
    (fun f ->
      let f' = Xdr.decode Xdr.dec_double (Xdr.encode Xdr.enc_double f) in
      Int64.bits_of_float f = Int64.bits_of_float f')

let prop_string_list_roundtrip =
  qcheck_case "string array roundtrip" QCheck.(small_list string)
    (fun l ->
      Xdr.decode
        (fun d -> Xdr.dec_array d Xdr.dec_string)
        (Xdr.encode (fun e -> Xdr.enc_array e Xdr.enc_string) l)
      = l)

let prop_mixed_sequence =
  qcheck_case "mixed tuple roundtrip" QCheck.(triple int64 string bool)
    (fun (a, b, c) ->
      let enc e () =
        Xdr.enc_hyper e a;
        Xdr.enc_string e b;
        Xdr.enc_bool e c
      in
      let dec d =
        let a' = Xdr.dec_hyper d in
        let b' = Xdr.dec_string d in
        let c' = Xdr.dec_bool d in
        (a', b', c')
      in
      Xdr.decode dec (Xdr.encode enc ()) = (a, b, c))

let () =
  Alcotest.run "xdr"
    [
      ( "wire format",
        [
          quick "int big-endian encoding" test_int_wire_format;
          quick "int range checks" test_int_range_check;
          quick "string padding" test_string_padding;
          quick "non-zero padding rejected" test_nonzero_padding_rejected;
          quick "bool strictness" test_bool_strictness;
          quick "fixed opaque" test_fixed_opaque;
          quick "option encoding" test_option;
          quick "hyper extremes" test_hyper_extremes;
        ] );
      ( "malformed input",
        [
          quick "every truncation rejected" test_truncation_rejected;
          quick "trailing garbage rejected" test_trailing_garbage_rejected;
          quick "hostile array count rejected" test_array_count_bound;
        ] );
      ( "properties",
        [
          prop_int_roundtrip;
          prop_uint_roundtrip;
          prop_hyper_roundtrip;
          prop_string_roundtrip;
          prop_double_roundtrip;
          prop_string_list_roundtrip;
          prop_mixed_sequence;
        ] );
    ]
