(* Transport stack: channels, the TLS-like record layer, per-transport
   framing/integrity, and the listener registry. *)

open Testutil
module Chan = Ovnet.Chan
module Tlslike = Ovnet.Tlslike
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim

(* --- Chan -------------------------------------------------------------- *)

let test_chan_fifo () =
  let c = Chan.create () in
  Chan.send c "a";
  Chan.send c "b";
  Alcotest.(check string) "first" "a" (Chan.recv c);
  Alcotest.(check string) "second" "b" (Chan.recv c)

let test_chan_close_semantics () =
  let c = Chan.create () in
  Chan.send c "last";
  Chan.close c;
  Alcotest.(check string) "drains after close" "last" (Chan.recv c);
  (match Chan.recv c with
   | exception Chan.Closed -> ()
   | _ -> Alcotest.fail "recv on drained closed channel succeeded");
  match Chan.send c "x" with
  | exception Chan.Closed -> ()
  | () -> Alcotest.fail "send on closed channel succeeded"

let test_chan_recv_timeout () =
  let c = Chan.create () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (option string)) "timeout" None (Chan.recv_opt c ~timeout_s:0.05);
  Alcotest.(check bool) "waited" true (Unix.gettimeofday () -. t0 >= 0.04)

let test_chan_cross_thread () =
  let c = Chan.create () in
  let producer =
    Thread.create
      (fun () ->
        for i = 1 to 100 do
          Chan.send c (string_of_int i)
        done)
      ()
  in
  let received = List.init 100 (fun _ -> Chan.recv c) in
  Thread.join producer;
  Alcotest.(check (list string)) "ordered across threads"
    (List.init 100 (fun i -> string_of_int (i + 1)))
    received

let test_chan_backpressure () =
  let c = Chan.create ~capacity:2 () in
  Chan.send c "1";
  Chan.send c "2";
  let third_sent = Atomic.make false in
  let sender =
    Thread.create
      (fun () ->
        Chan.send c "3";
        Atomic.set third_sent true)
      ()
  in
  Thread.delay 0.03;
  Alcotest.(check bool) "sender blocked at capacity" false (Atomic.get third_sent);
  ignore (Chan.recv c);
  Thread.join sender;
  Alcotest.(check bool) "sender released" true (Atomic.get third_sent)

let test_pipe_duplex () =
  let a, b = Chan.pipe () in
  Chan.send a.Chan.outgoing "to-b";
  Chan.send b.Chan.outgoing "to-a";
  Alcotest.(check string) "b receives" "to-b" (Chan.recv b.Chan.incoming);
  Alcotest.(check string) "a receives" "to-a" (Chan.recv a.Chan.incoming)

(* --- Tlslike ----------------------------------------------------------- *)

let test_tls_roundtrip () =
  let client, server = Tlslike.handshake_pair () in
  List.iter
    (fun msg ->
      let sealed = Tlslike.seal client msg in
      Alcotest.(check bool) "ciphertext differs" true
        (String.length msg < 1 || sealed <> msg);
      Alcotest.(check string) "opens to original" msg (Tlslike.open_ server sealed))
    [ ""; "x"; "hello world"; String.make 4096 'Q' ]

let test_tls_tamper_detected () =
  let client, server = Tlslike.handshake_pair () in
  let sealed = Bytes.of_string (Tlslike.seal client "sensitive") in
  Bytes.set sealed (Bytes.length sealed - 1)
    (Char.chr (Char.code (Bytes.get sealed (Bytes.length sealed - 1)) lxor 1));
  match Tlslike.open_ server (Bytes.to_string sealed) with
  | exception Tlslike.Auth_failure _ -> ()
  | _ -> Alcotest.fail "tampered record accepted"

let test_tls_replay_and_reorder_detected () =
  let client, server = Tlslike.handshake_pair () in
  let r1 = Tlslike.seal client "one" in
  let r2 = Tlslike.seal client "two" in
  (* Out of order *)
  (match Tlslike.open_ server r2 with
   | exception Tlslike.Auth_failure _ -> ()
   | _ -> Alcotest.fail "out-of-order record accepted");
  (* In order still fine *)
  Alcotest.(check string) "r1" "one" (Tlslike.open_ server r1);
  Alcotest.(check string) "r2" "two" (Tlslike.open_ server r2);
  (* Replay *)
  match Tlslike.open_ server r1 with
  | exception Tlslike.Auth_failure _ -> ()
  | _ -> Alcotest.fail "replayed record accepted"

let test_tls_wrong_session_rejected () =
  let client, _server = Tlslike.handshake_pair () in
  let _other_client, other_server = Tlslike.handshake_pair () in
  let sealed = Tlslike.seal client "cross" in
  match Tlslike.open_ other_server sealed with
  | exception Tlslike.Auth_failure _ -> ()
  | _ -> Alcotest.fail "record accepted by a foreign session"

let test_tls_rekey () =
  let client, server = Tlslike.handshake_pair () in
  Alcotest.(check string) "pre-rekey" "a" (Tlslike.open_ server (Tlslike.seal client "a"));
  Tlslike.rekey client server;
  Alcotest.(check string) "post-rekey" "b" (Tlslike.open_ server (Tlslike.seal client "b"))

let prop_tls_roundtrip =
  qcheck_case "seal/open roundtrip over message sequences"
    QCheck.(small_list string)
    (fun msgs ->
      let client, server = Tlslike.handshake_pair () in
      List.for_all (fun m -> Tlslike.open_ server (Tlslike.seal client m) = m) msgs)

(* --- Transport --------------------------------------------------------- *)

let default_identity =
  Transport.{ uid = 0; gid = 0; pid = 42; username = "root"; groupname = "root" }

let connect_pair kind =
  let client_ep, server_ep = Chan.pipe () in
  let server_box = ref None in
  let accepter =
    Thread.create (fun () -> server_box := Some (Transport.accept kind server_ep)) ()
  in
  let peer_sends =
    match kind with
    | Transport.Unix_sock -> Transport.Local default_identity
    | Transport.Tcp | Transport.Tls ->
      Transport.Remote { sock_addr = "10.0.0.7:1234"; x509_dname = None }
  in
  let client = Transport.initiate kind ~peer_sends client_ep in
  Thread.join accepter;
  match !server_box with
  | Some server -> (client, server)
  | None -> Alcotest.fail "accept did not complete"

let test_transport_roundtrip_all_kinds () =
  List.iter
    (fun kind ->
      let client, server = connect_pair kind in
      Transport.send client "ping";
      Alcotest.(check string)
        (Transport.kind_name kind ^ " payload")
        "ping" (Transport.recv server);
      Transport.send server "pong";
      Alcotest.(check string) "reply" "pong" (Transport.recv client))
    [ Transport.Unix_sock; Transport.Tcp; Transport.Tls ]

let test_transport_peer_identity () =
  let _, server_unix = connect_pair Transport.Unix_sock in
  (match Transport.peer server_unix with
   | Transport.Local id ->
     Alcotest.(check string) "username" "root" id.Transport.username;
     Alcotest.(check int) "pid" 42 id.Transport.pid
   | Transport.Remote _ -> Alcotest.fail "unix peer is remote");
  let _, server_tls = connect_pair Transport.Tls in
  match Transport.peer server_tls with
  | Transport.Remote r ->
    Alcotest.(check string) "addr" "10.0.0.7:1234" r.sock_addr;
    Alcotest.(check bool) "tls has dname" true (r.x509_dname <> None)
  | Transport.Local _ -> Alcotest.fail "tls peer is local"

let test_tcp_peer_has_no_dname () =
  let _, server = connect_pair Transport.Tcp in
  match Transport.peer server with
  | Transport.Remote r ->
    Alcotest.(check bool) "no dname on tcp" true (r.x509_dname = None)
  | Transport.Local _ -> Alcotest.fail "tcp peer is local"

let test_transport_byte_accounting () =
  let client, server = connect_pair Transport.Unix_sock in
  let base_rx = Transport.bytes_rx server in
  Transport.send client "12345";
  ignore (Transport.recv server);
  Alcotest.(check int) "server rx grew by payload" 5
    (Transport.bytes_rx server - base_rx)

let test_kind_names () =
  Alcotest.(check string) "unix" "unix" (Transport.kind_name Transport.Unix_sock);
  Alcotest.(check bool) "parse tls" true
    (Transport.kind_of_name "tls" = Ok Transport.Tls);
  match Transport.kind_of_name "carrier-pigeon" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus transport accepted"

(* --- Netsim ------------------------------------------------------------ *)

let test_netsim_connect_refused () =
  match Netsim.connect (fresh_name "nowhere") Transport.Unix_sock with
  | exception Netsim.Connection_refused _ -> ()
  | _ -> Alcotest.fail "connected to unbound address"

let test_netsim_accept_loop () =
  let addr = fresh_name "srv" in
  let greeted = Atomic.make 0 in
  let listener =
    Netsim.listen addr (fun conn ->
        Atomic.incr greeted;
        Transport.send conn "hello";
        Transport.close conn)
  in
  let c1 = Netsim.connect addr Transport.Unix_sock in
  let c2 = Netsim.connect addr Transport.Tls in
  Alcotest.(check string) "greeting 1" "hello" (Transport.recv c1);
  Alcotest.(check string) "greeting 2" "hello" (Transport.recv c2);
  Alcotest.(check bool) "handler ran per connection" true
    (eventually (fun () -> Atomic.get greeted = 2));
  Netsim.close_listener listener;
  match Netsim.connect addr Transport.Unix_sock with
  | exception Netsim.Connection_refused _ -> ()
  | _ -> Alcotest.fail "connected after close_listener"

let test_netsim_address_in_use () =
  let addr = fresh_name "dup" in
  let l = Netsim.listen addr (fun _ -> ()) in
  (match Netsim.listen addr (fun _ -> ()) with
   | exception Netsim.Address_in_use _ -> ()
   | _ -> Alcotest.fail "double bind accepted");
  Netsim.close_listener l

let test_netsim_identity_passthrough () =
  let addr = fresh_name "id" in
  let seen = ref None in
  let listener =
    Netsim.listen addr (fun conn ->
        seen := Some (Transport.peer conn);
        Transport.close conn)
  in
  let identity =
    Transport.{ uid = 1000; gid = 1000; pid = 777; username = "alice"; groupname = "users" }
  in
  let conn = Netsim.connect ~identity addr Transport.Unix_sock in
  ignore (eventually (fun () -> !seen <> None));
  (match !seen with
   | Some (Transport.Local id) ->
     Alcotest.(check string) "username" "alice" id.Transport.username
   | _ -> Alcotest.fail "identity not seen");
  Transport.close conn;
  Netsim.close_listener listener

let () =
  Alcotest.run "transport"
    [
      ( "chan",
        [
          quick "fifo order" test_chan_fifo;
          quick "close semantics" test_chan_close_semantics;
          quick "recv timeout" test_chan_recv_timeout;
          quick "cross-thread ordering" test_chan_cross_thread;
          quick "capacity back-pressure" test_chan_backpressure;
          quick "duplex pipe" test_pipe_duplex;
        ] );
      ( "tls-like layer",
        [
          quick "seal/open roundtrip" test_tls_roundtrip;
          quick "tampering detected" test_tls_tamper_detected;
          quick "replay and reorder detected" test_tls_replay_and_reorder_detected;
          quick "foreign session rejected" test_tls_wrong_session_rejected;
          quick "rekey" test_tls_rekey;
          prop_tls_roundtrip;
        ] );
      ( "transport",
        [
          quick "roundtrip on all kinds" test_transport_roundtrip_all_kinds;
          quick "peer identity" test_transport_peer_identity;
          quick "tcp peer lacks x509 dname" test_tcp_peer_has_no_dname;
          quick "byte accounting" test_transport_byte_accounting;
          quick "kind names" test_kind_names;
        ] );
      ( "netsim",
        [
          quick "connection refused" test_netsim_connect_refused;
          quick "accept loop" test_netsim_accept_loop;
          quick "address in use" test_netsim_address_in_use;
          quick "identity passthrough" test_netsim_identity_passthrough;
        ] );
    ]
