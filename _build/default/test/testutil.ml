(* Shared helpers for the test suites. *)

let ok_or_fail to_string = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (to_string e)

let vok r = ok_or_fail Ovirt.Verror.to_string r
let sok r = ok_or_fail Fun.id r

let expect_verr code = function
  | Ok _ -> Alcotest.failf "expected %s error, got success" (Ovirt.Verror.code_name code)
  | Error e ->
    Alcotest.(check string)
      "error code" (Ovirt.Verror.code_name code)
      (Ovirt.Verror.code_name e.Ovirt.Verror.code)

let expect_error = function
  | Ok _ -> Alcotest.fail "expected an error, got success"
  | Error _ -> ()

(* Unique names: the driver node registries and the simulated network are
   process-global, so every test works in its own namespace. *)
let name_counter = ref 0

let fresh_name prefix =
  incr name_counter;
  Printf.sprintf "%s-%d" prefix !name_counter

let quick name f = Alcotest.test_case name `Quick f

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A connection to a fresh, isolated test-driver node. *)
let fresh_test_conn () =
  vok (Ovirt.Connect.open_uri ("test://" ^ fresh_name "node" ^ "/"))

let define_and_start conn ~virt_type ~name ?(memory_kib = 8 * 1024) () =
  let cfg = Vmm.Vm_config.make ~memory_kib name in
  let dom = vok (Ovirt.Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type cfg)) in
  vok (Ovirt.Domain.create dom);
  dom

(* Wait until [cond ()] or the timeout elapses; threads in the daemon make
   a few assertions timing-dependent. *)
let eventually ?(timeout_s = 2.0) cond =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if cond () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.005;
      loop ()
    end
  in
  loop ()
