test/test_drivers.ml: Alcotest Drivers Hvsim List Option Ovirt Printf Testutil Vmm
