test/test_integration.ml: Alcotest Atomic Fun Hashtbl List Option Ovcli Ovirt Printf Result String Testutil Thread Vlog Vmm
