test/testutil.ml: Alcotest Fun Ovirt Printf QCheck QCheck_alcotest Thread Unix Vmm
