test/test_transport.ml: Alcotest Atomic Bytes Char List Ovnet QCheck String Testutil Thread Unix
