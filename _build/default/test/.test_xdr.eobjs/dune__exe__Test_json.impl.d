test/test_json.ml: Alcotest List Mini_json Option Printf QCheck Testutil
