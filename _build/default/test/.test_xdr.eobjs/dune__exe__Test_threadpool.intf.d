test/test_threadpool.mli:
