test/test_rpc.ml: Alcotest Bytes Char List Ovirt_core Ovrpc Printf Protocol QCheck String Testutil Vmm Xdr
