test/test_admin.ml: Alcotest Fun List Mutex Option Ovirt Ovnet Ovrpc Printf Protocol Result String Testutil Thread Threadpool Vlog
