test/test_daemon.ml: Alcotest Atomic Fun List Option Ovirt Ovnet Ovrpc Printf Protocol Rpc_client String Testutil Thread Threadpool Unix Vlog Vmm
