test/test_threadpool.ml: Alcotest Atomic List Mutex QCheck Testutil Thread Threadpool
