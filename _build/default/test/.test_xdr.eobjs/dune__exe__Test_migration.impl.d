test/test_migration.ml: Alcotest List Option Ovirt Testutil Vmm
