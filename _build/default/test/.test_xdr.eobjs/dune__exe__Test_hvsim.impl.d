test/test_hvsim.ml: Alcotest Hashtbl Hvsim List Mini_json Mini_xml Printf QCheck String Testutil Vmm
