test/test_vmm.ml: Alcotest Char Hashtbl List Printf QCheck String Testutil Vmm
