test/test_vlog.ml: Alcotest List Printf QCheck String Testutil Thread Vlog
