test/test_xml.ml: Alcotest List Mini_xml Printf QCheck Testutil
