test/test_hvsim.mli:
