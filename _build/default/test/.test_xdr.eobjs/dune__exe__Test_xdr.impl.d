test/test_xdr.ml: Alcotest Bytes Char Int64 List Printf QCheck String Testutil Xdr
