test/test_vlog.mli:
