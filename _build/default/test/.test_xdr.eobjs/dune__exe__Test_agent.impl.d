test/test_agent.ml: Alcotest Ovirt Testutil Vmm
