test/test_core.ml: Alcotest List Ovirt Ovirt_core QCheck Testutil Vmm
