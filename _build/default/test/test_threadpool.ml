(* Workerpool: limits, demand-driven growth, cooperative shrink, priority
   workers, drain/shutdown, and failure accounting. *)

open Testutil

let make ?(min_workers = 2) ?(max_workers = 4) ?(prio_workers = 1) () =
  Threadpool.create ~name:(fresh_name "pool") ~min_workers ~max_workers
    ~prio_workers ()

let test_initial_state () =
  let pool = make () in
  let s = Threadpool.stats pool in
  Alcotest.(check int) "min" 2 s.Threadpool.min_workers;
  Alcotest.(check int) "max" 4 s.Threadpool.max_workers;
  Alcotest.(check int) "spawned at min" 2 s.Threadpool.n_workers;
  Alcotest.(check int) "prio" 1 s.Threadpool.prio_workers;
  Alcotest.(check int) "queue empty" 0 s.Threadpool.job_queue_depth;
  Threadpool.shutdown pool

let test_executes_jobs () =
  let pool = make () in
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Threadpool.push pool (fun () -> Atomic.incr counter)
  done;
  Threadpool.drain pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter);
  Alcotest.(check int) "completed counter" 100
    (Threadpool.stats pool).Threadpool.jobs_completed;
  Threadpool.shutdown pool

let test_invalid_limits () =
  let expect_invalid f =
    match f () with
    | exception Threadpool.Invalid_limits _ -> ()
    | _ -> Alcotest.fail "invalid limits accepted"
  in
  expect_invalid (fun () ->
      make ~min_workers:5 ~max_workers:2 ());
  expect_invalid (fun () -> make ~max_workers:0 ());
  expect_invalid (fun () -> make ~prio_workers:(-1) ());
  let pool = make () in
  expect_invalid (fun () ->
      Threadpool.set_limits pool ~min_workers:10 ~max_workers:3 ();
      pool);
  Threadpool.shutdown pool

let test_grows_on_demand () =
  let pool = make ~min_workers:1 ~max_workers:8 () in
  (* Block several workers so new pushes find nobody free. *)
  let release = Mutex.create () in
  Mutex.lock release;
  let started = Atomic.make 0 in
  for _ = 1 to 6 do
    Threadpool.push pool (fun () ->
        Atomic.incr started;
        Mutex.lock release;
        Mutex.unlock release)
  done;
  let grew =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.n_workers >= 6)
  in
  Alcotest.(check bool) "pool grew on demand" true grew;
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_never_exceeds_max () =
  let pool = make ~min_workers:1 ~max_workers:3 () in
  let release = Mutex.create () in
  Mutex.lock release;
  for _ = 1 to 20 do
    Threadpool.push pool (fun () ->
        Mutex.lock release;
        Mutex.unlock release)
  done;
  Thread.delay 0.05;
  let s = Threadpool.stats pool in
  Alcotest.(check bool) "capped at max" true (s.Threadpool.n_workers <= 3);
  Alcotest.(check bool) "rest queued" true (s.Threadpool.job_queue_depth >= 17 - 3);
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_shrinks_cooperatively () =
  let pool = make ~min_workers:6 ~max_workers:8 () in
  Alcotest.(check int) "starts at 6" 6 (Threadpool.stats pool).Threadpool.n_workers;
  Threadpool.set_limits pool ~min_workers:1 ~max_workers:2 ();
  let shrank =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.n_workers <= 2)
  in
  Alcotest.(check bool) "workers retired on wakeup" true shrank;
  (* The pool still works afterwards. *)
  let hit = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set hit true);
  Threadpool.drain pool;
  Alcotest.(check bool) "post-shrink job ran" true (Atomic.get hit);
  Threadpool.shutdown pool

let test_priority_worker_count_adjustable () =
  let pool = make ~prio_workers:2 () in
  Alcotest.(check int) "two prio" 2 (Threadpool.stats pool).Threadpool.prio_workers;
  Threadpool.set_limits pool ~prio_workers:5 ();
  let grew = eventually (fun () -> (Threadpool.stats pool).Threadpool.prio_workers = 5) in
  Alcotest.(check bool) "prio grew" true grew;
  Threadpool.set_limits pool ~prio_workers:1 ();
  let shrank =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.prio_workers = 1)
  in
  Alcotest.(check bool) "prio shrank" true shrank;
  Threadpool.shutdown pool

let test_priority_jobs_progress_when_ordinary_wedged () =
  (* The design guarantee: every ordinary worker stuck on a hung
     "hypervisor call" must not prevent high-priority work. *)
  let pool = make ~min_workers:2 ~max_workers:2 ~prio_workers:1 () in
  let release = Mutex.create () in
  Mutex.lock release;
  for _ = 1 to 2 do
    Threadpool.push pool (fun () ->
        Mutex.lock release;
        Mutex.unlock release)
  done;
  Thread.delay 0.02;
  (* Ordinary workers are both wedged; queue a priority job. *)
  let ran = Atomic.make false in
  Threadpool.push pool ~priority:true (fun () -> Atomic.set ran true);
  let progressed = eventually (fun () -> Atomic.get ran) in
  Alcotest.(check bool) "priority job ran while pool wedged" true progressed;
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_priority_workers_ignore_ordinary_jobs () =
  (* A pool with zero ordinary workers must leave normal jobs queued. *)
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~min_workers:0 ~max_workers:1
      ~prio_workers:2 ()
  in
  (* Wedge the single ordinary slot the pool may spawn. *)
  let release = Mutex.create () in
  Mutex.lock release;
  Threadpool.push pool (fun () ->
      Mutex.lock release;
      Mutex.unlock release);
  Thread.delay 0.02;
  let ran = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set ran true);
  Thread.delay 0.05;
  Alcotest.(check bool) "normal job not stolen by prio workers" false
    (Atomic.get ran);
  Mutex.unlock release;
  Threadpool.drain pool;
  Alcotest.(check bool) "ran after ordinary freed" true (Atomic.get ran);
  Threadpool.shutdown pool

let test_failed_jobs_counted () =
  let pool = make () in
  Threadpool.push pool (fun () -> failwith "boom");
  Threadpool.push pool (fun () -> ());
  Threadpool.drain pool;
  Alcotest.(check int) "one failure" 1 (Threadpool.failed_jobs pool);
  Alcotest.(check int) "both completed" 2
    (Threadpool.stats pool).Threadpool.jobs_completed;
  Threadpool.shutdown pool

let test_push_after_shutdown_rejected () =
  let pool = make () in
  Threadpool.shutdown pool;
  match Threadpool.push pool (fun () -> ()) with
  | exception Threadpool.Invalid_limits _ -> ()
  | () -> Alcotest.fail "push accepted after shutdown"

let test_shutdown_is_idempotent () =
  let pool = make () in
  Threadpool.shutdown pool;
  Threadpool.shutdown pool;
  Alcotest.(check int) "no workers" 0 (Threadpool.stats pool).Threadpool.n_workers

let test_concurrent_pushers () =
  let pool = make ~min_workers:2 ~max_workers:6 () in
  let counter = Atomic.make 0 in
  let pushers =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 200 do
              Threadpool.push pool (fun () -> Atomic.incr counter)
            done)
          ())
  in
  List.iter Thread.join pushers;
  Threadpool.drain pool;
  Alcotest.(check int) "all 1600 ran" 1600 (Atomic.get counter);
  Threadpool.shutdown pool

let prop_stats_invariants =
  qcheck_case ~count:30 "stats invariants across random configs"
    QCheck.(triple (int_range 0 4) (int_range 1 6) (int_range 0 3))
    (fun (min_w, extra, prio) ->
      let max_w = min_w + extra in
      let pool =
        Threadpool.create ~name:(fresh_name "prop") ~min_workers:min_w
          ~max_workers:max_w ~prio_workers:prio ()
      in
      for _ = 1 to 20 do
        Threadpool.push pool (fun () -> ())
      done;
      Threadpool.drain pool;
      let s = Threadpool.stats pool in
      let invariant =
        s.Threadpool.n_workers >= s.Threadpool.min_workers
        && s.Threadpool.n_workers <= s.Threadpool.max_workers
        && s.Threadpool.free_workers <= s.Threadpool.n_workers
        && s.Threadpool.prio_workers = prio
        && s.Threadpool.jobs_completed = 20
      in
      Threadpool.shutdown pool;
      invariant)

let () =
  Alcotest.run "threadpool"
    [
      ( "lifecycle",
        [
          quick "initial state" test_initial_state;
          quick "executes jobs" test_executes_jobs;
          quick "invalid limits rejected" test_invalid_limits;
          quick "push after shutdown rejected" test_push_after_shutdown_rejected;
          quick "shutdown idempotent" test_shutdown_is_idempotent;
        ] );
      ( "dynamic sizing",
        [
          quick "grows on demand" test_grows_on_demand;
          quick "never exceeds max" test_never_exceeds_max;
          quick "shrinks cooperatively" test_shrinks_cooperatively;
          quick "priority worker count adjustable" test_priority_worker_count_adjustable;
        ] );
      ( "priority workers",
        [
          quick "progress while ordinary wedged"
            test_priority_jobs_progress_when_ordinary_wedged;
          quick "never steal ordinary jobs" test_priority_workers_ignore_ordinary_jobs;
        ] );
      ( "robustness",
        [
          quick "failed jobs counted" test_failed_jobs_counted;
          quick "concurrent pushers" test_concurrent_pushers;
          prop_stats_invariants;
        ] );
    ]
