(* Daemon and remote driver: connection establishment over all transports,
   direct-vs-remote parity, error propagation, client limits, events over
   RPC, disconnect cleanup, malformed traffic, and configuration. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Server_obj = Ovirt.Server_obj
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Rpc_packet = Ovrpc.Rpc_packet
module Rp = Protocol.Remote_protocol

let () = Ovirt.initialize ()

(* One daemon per test, with a unique name and a quiet logger. *)
let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "testd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

let remote_uri ?(transport = "unix") ~daemon node =
  Printf.sprintf "test+%s://%s/?daemon=%s" transport node daemon

(* --- connection establishment ------------------------------------------- *)

let test_connect_all_transports () =
  with_daemon (fun name _ ->
      List.iter
        (fun transport ->
          let conn =
            vok (Connect.open_uri (remote_uri ~transport ~daemon:name (fresh_name "n")))
          in
          Alcotest.(check bool)
            (transport ^ " works")
            true
            (List.length (vok (Connect.list_domains conn)) = 1);
          Connect.close conn)
        [ "unix"; "tcp"; "tls"; "ssh" ])

let test_connect_daemon_down () =
  match Connect.open_uri "test+unix:///default?daemon=no-such-daemon" with
  | Error e -> Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure)
  | Ok _ -> Alcotest.fail "connected to a daemon that is not running"

let test_unknown_transport_rejected () =
  with_daemon (fun name _ ->
      match Connect.open_uri (remote_uri ~transport:"smoke" ~daemon:name "x") with
      | Error e ->
        Alcotest.(check bool) "invalid arg" true (e.Verror.code = Verror.Invalid_arg)
      | Ok _ -> Alcotest.fail "bogus transport accepted")

let test_daemon_rejects_unknown_scheme () =
  with_daemon (fun name _ ->
      match Connect.open_uri ("vbox+unix:///x?daemon=" ^ name) with
      | Error e ->
        Alcotest.(check bool) "no connect propagated" true
          (e.Verror.code = Verror.No_connect)
      | Ok _ -> Alcotest.fail "daemon opened unknown scheme")

(* --- direct vs remote parity --------------------------------------------- *)

let test_remote_parity_with_direct () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "parity" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let remote = vok (Connect.open_uri (remote_uri ~daemon node)) in
      (* Same node, two paths: state changes through one are visible in
         the other, and all reads agree. *)
      let name = fresh_name "vm" in
      let cfg = Vm_config.make ~memory_kib:(8 * 1024) name in
      let rdom =
        vok (Domain.define_xml remote (Vmm.Domxml.to_xml ~virt_type:"test" cfg))
      in
      vok (Domain.create rdom);
      let ddom = vok (Domain.lookup_by_name direct name) in
      Alcotest.(check bool) "direct sees the started domain" true
        (vok (Domain.get_state ddom) = Vm_state.Running);
      let dinfo = vok (Domain.get_info ddom) in
      let rinfo = vok (Domain.get_info rdom) in
      Alcotest.(check bool) "info agrees" true (dinfo = rinfo);
      Alcotest.(check string) "xml agrees" (vok (Domain.xml_desc ddom))
        (vok (Domain.xml_desc rdom));
      Alcotest.(check string) "hostname agrees" (vok (Connect.hostname direct))
        (vok (Connect.hostname remote));
      let dcaps = vok (Connect.capabilities direct) in
      let rcaps = vok (Connect.capabilities remote) in
      Alcotest.(check bool) "capabilities agree" true (dcaps = rcaps);
      vok (Domain.destroy rdom);
      Connect.close remote;
      Connect.close direct)

let test_remote_networks_and_storage () =
  with_daemon (fun daemon _ ->
      let remote = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let nets = vok (Ovirt.Network.list remote) in
      Alcotest.(check bool) "default network over rpc" true
        (List.exists (fun n -> n.Ovirt.Net_backend.net_name = "default") nets);
      let net =
        vok
          (Ovirt.Network.define remote ~name:"remote-net" ~bridge:"virbr9"
             ~ip_range:"10.9.0.0/24")
      in
      vok (Ovirt.Network.start net);
      let info = vok (Ovirt.Network.info net) in
      Alcotest.(check bool) "started over rpc" true info.Ovirt.Net_backend.active;
      vok (Ovirt.Network.stop net);
      vok (Ovirt.Network.undefine net);
      let pool = vok (Ovirt.Storage.lookup_pool remote "default") in
      let vol =
        vok
          (Ovirt.Storage.create_volume pool ~name:"r.img" ~capacity_b:4096
             ~format:"raw")
      in
      Alcotest.(check string) "volume path over rpc" "/var/lib/ovirt/images/r.img"
        vol.Ovirt.Storage_backend.vol_key;
      let found = vok (Ovirt.Storage.volume_by_path remote vol.Ovirt.Storage_backend.vol_key) in
      Alcotest.(check string) "resolved" "r.img" found.Ovirt.Storage_backend.vol_name;
      vok (Ovirt.Storage.delete_volume pool ~name:"r.img");
      Connect.close remote)

let test_remote_error_codes_propagate () =
  with_daemon (fun daemon _ ->
      let remote = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      expect_verr Verror.No_domain (Domain.lookup_by_name remote "missing");
      let dom = vok (Domain.lookup_by_name remote "test") in
      expect_verr Verror.Operation_invalid (Domain.create dom);
      expect_verr Verror.Invalid_arg
        (Domain.define_xml remote "<domain type=\"test\"><name></name></domain>");
      Connect.close remote)

let test_remote_managed_save () =
  with_daemon (fun daemon _ ->
      let remote = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let cfg = Vm_config.make ~memory_kib:(8 * 1024) (fresh_name "svr") in
      let dom = vok (Domain.define_xml remote (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
      vok (Domain.create dom);
      Alcotest.(check bool) "no image" false (vok (Domain.has_managed_save dom));
      vok (Domain.save dom);
      Alcotest.(check bool) "saved over rpc" true (vok (Domain.has_managed_save dom));
      Alcotest.(check bool) "stopped" true (vok (Domain.get_state dom) = Vm_state.Shutoff);
      vok (Domain.restore dom);
      Alcotest.(check bool) "restored over rpc" true
        (vok (Domain.get_state dom) = Vm_state.Running);
      Connect.close remote)

let test_remote_migration_unsupported () =
  with_daemon (fun daemon _ ->
      let remote = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let dest = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n2"))) in
      let dom = vok (Domain.lookup_by_name remote "test") in
      expect_verr Verror.Operation_unsupported (Domain.migrate dom ~dest ());
      Connect.close remote;
      Connect.close dest)

(* --- events over the wire ------------------------------------------------ *)

let test_events_stream_to_client () =
  with_daemon (fun daemon _ ->
      let remote = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let seen = ref [] in
      let _ =
        vok
          (Connect.subscribe_events remote (fun ev ->
               seen := ev.Ovirt.Events.lifecycle :: !seen))
      in
      let cfg = Vm_config.make ~memory_kib:(8 * 1024) (fresh_name "evvm") in
      let dom = vok (Domain.define_xml remote (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
      vok (Domain.create dom);
      vok (Domain.destroy dom);
      let delivered =
        eventually (fun () ->
            List.mem Ovirt.Events.Ev_defined !seen
            && List.mem Ovirt.Events.Ev_started !seen
            && List.mem Ovirt.Events.Ev_stopped !seen)
      in
      Alcotest.(check bool) "three events crossed the wire" true delivered;
      Connect.close remote)

(* --- client limits and lifecycle ------------------------------------------ *)

let test_client_limit_enforced () =
  let config =
    { quiet_config with Daemon_config.max_clients = 2; max_anonymous_clients = 2 }
  in
  with_daemon ~config (fun daemon d ->
      let c1 = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let c2 = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      (* Third client: the daemon closes it; the open call fails. *)
      (match Connect.open_uri (remote_uri ~daemon (fresh_name "n")) with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "third client accepted over the limit");
      let srv = Option.get (Daemon.find_server d "libvirtd") in
      let total, _ = Server_obj.client_counts srv in
      Alcotest.(check int) "two clients tracked" 2 total;
      Connect.close c1;
      (* Slot freed: a new client fits again. *)
      let ok_now =
        eventually (fun () ->
            match Connect.open_uri (remote_uri ~daemon (fresh_name "n")) with
            | Ok c ->
              Connect.close c;
              true
            | Error _ -> false)
      in
      Alcotest.(check bool) "slot reusable after close" true ok_now;
      Connect.close c2)

let test_disconnect_cleans_daemon_state () =
  with_daemon (fun daemon d ->
      let conn = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let srv = Option.get (Daemon.find_server d "libvirtd") in
      Alcotest.(check int) "one client" 1 (fst (Server_obj.client_counts srv));
      Connect.close conn;
      let gone =
        eventually (fun () -> fst (Server_obj.client_counts srv) = 0)
      in
      Alcotest.(check bool) "client reaped after disconnect" true gone)

let test_client_authentication_tracking () =
  with_daemon (fun daemon d ->
      (* A raw transport connection that never completes a call stays
         unauthenticated. *)
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      let srv = Option.get (Daemon.find_server d "libvirtd") in
      let seen =
        eventually (fun () ->
            let total, unauth = Server_obj.client_counts srv in
            total = 1 && unauth = 1)
      in
      Alcotest.(check bool) "unauthenticated counted" true seen;
      (* A proper client authenticates via its first successful call. *)
      let conn = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      let authed =
        eventually (fun () ->
            let total, unauth = Server_obj.client_counts srv in
            total = 2 && unauth = 1)
      in
      Alcotest.(check bool) "authenticated counted" true authed;
      Transport.close raw;
      Connect.close conn)

(* --- hostile traffic ------------------------------------------------------ *)

let test_malformed_packet_drops_connection () =
  with_daemon (fun daemon _ ->
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      Transport.send raw "not a packet at all";
      let closed =
        eventually (fun () ->
            match Transport.recv_opt raw ~timeout_s:0.05 with
            | exception Transport.Closed -> true
            | Some _ | None -> false)
      in
      Alcotest.(check bool) "daemon dropped the connection" true closed)

let test_unknown_program_answered_with_error () =
  with_daemon (fun daemon _ ->
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      let header =
        Rpc_packet.call_header ~program:0x1234 ~version:1 ~procedure:1 ~serial:7
      in
      Transport.send raw (Rpc_packet.encode header "");
      (match Transport.recv_opt raw ~timeout_s:2.0 with
       | Some wire ->
         let rh, body = Rpc_packet.decode wire in
         Alcotest.(check bool) "error reply" true
           (rh.Rpc_packet.status = Rpc_packet.Status_error);
         Alcotest.(check int) "serial echoed" 7 rh.Rpc_packet.serial;
         let err = Rp.dec_error body in
         Alcotest.(check bool) "rpc failure" true (err.Verror.code = Verror.Rpc_failure)
       | None -> Alcotest.fail "no reply to unknown program");
      Transport.close raw)

let test_wrong_version_rejected () =
  with_daemon (fun daemon _ ->
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      let header =
        Rpc_packet.call_header ~program:Rp.program ~version:99
          ~procedure:(Rp.proc_to_int Rp.Proc_ping) ~serial:1
      in
      Transport.send raw (Rpc_packet.encode header "");
      (match Transport.recv_opt raw ~timeout_s:2.0 with
       | Some wire ->
         let rh, _ = Rpc_packet.decode wire in
         Alcotest.(check bool) "error reply" true
           (rh.Rpc_packet.status = Rpc_packet.Status_error)
       | None -> Alcotest.fail "no reply to wrong version");
      Transport.close raw)

let test_call_without_open_rejected () =
  with_daemon (fun daemon _ ->
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      let header =
        Rpc_packet.call_header ~program:Rp.program ~version:Rp.version
          ~procedure:(Rp.proc_to_int Rp.Proc_list_domains) ~serial:3
      in
      Transport.send raw (Rpc_packet.encode header "");
      (match Transport.recv_opt raw ~timeout_s:2.0 with
       | Some wire ->
         let rh, body = Rpc_packet.decode wire in
         Alcotest.(check bool) "error" true
           (rh.Rpc_packet.status = Rpc_packet.Status_error);
         Alcotest.(check bool) "no_connect" true
           ((Rp.dec_error body).Verror.code = Verror.No_connect)
       | None -> Alcotest.fail "no reply");
      Transport.close raw)

let test_double_open_rejected () =
  with_daemon (fun daemon _ ->
      let conn = vok (Connect.open_uri (remote_uri ~daemon (fresh_name "n"))) in
      (* Send a second OPEN over the same connection, below the API. *)
      ignore conn;
      (* The public API opens exactly once per connection, so exercise the
         daemon check directly. *)
      let raw = Netsim.connect (daemon ^ "-sock") Transport.Unix_sock in
      let send_open serial =
        let header =
          Rpc_packet.call_header ~program:Rp.program ~version:Rp.version
            ~procedure:(Rp.proc_to_int Rp.Proc_open) ~serial
        in
        Transport.send raw
          (Rpc_packet.encode header (Rp.enc_string_body "test:///default"))
      in
      send_open 1;
      (match Transport.recv_opt raw ~timeout_s:2.0 with
       | Some wire ->
         let rh, _ = Rpc_packet.decode wire in
         Alcotest.(check bool) "first open ok" true
           (rh.Rpc_packet.status = Rpc_packet.Status_ok)
       | None -> Alcotest.fail "no reply to first open");
      send_open 2;
      (match Transport.recv_opt raw ~timeout_s:2.0 with
       | Some wire ->
         let rh, body = Rpc_packet.decode wire in
         Alcotest.(check bool) "second open rejected" true
           (rh.Rpc_packet.status = Rpc_packet.Status_error);
         Alcotest.(check bool) "operation invalid" true
           ((Rp.dec_error body).Verror.code = Verror.Operation_invalid)
       | None -> Alcotest.fail "no reply to second open");
      Transport.close raw;
      Connect.close conn)

(* --- daemon assembly ------------------------------------------------------ *)

let test_daemon_structure () =
  with_daemon (fun _ d ->
      Alcotest.(check (list string)) "two servers" [ "libvirtd"; "admin" ]
        (List.map fst (Daemon.servers d));
      Alcotest.(check bool) "uptime ticks" true (Daemon.uptime_s d >= 0.0))

let test_daemon_name_collision () =
  with_daemon (fun name _ ->
      match Daemon.start ~name () with
      | exception Netsim.Address_in_use _ -> ()
      | d ->
        Daemon.stop d;
        Alcotest.fail "second daemon with same name started")

let test_daemon_stop_closes_clients () =
  let name = fresh_name "testd" in
  let daemon = Daemon.start ~name ~config:quiet_config () in
  let conn = vok (Connect.open_uri (remote_uri ~daemon:name (fresh_name "n"))) in
  Daemon.stop daemon;
  let refused =
    eventually (fun () ->
        match Connect.list_domains conn with Error _ -> true | Ok _ -> false)
  in
  Alcotest.(check bool) "calls fail after daemon stop" true refused

let test_config_parsing () =
  let text =
    String.concat "\n"
      [
        "# a comment";
        "min_workers = 3";
        "max_workers = 9";
        "prio_workers = 2";
        "max_clients = 40  # trailing comment";
        "log_level = 2";
        "log_filters = \"3:rpc 4:event\"";
        "log_outputs = \"1:file:/var/log/x.log\"";
        "";
      ]
  in
  let cfg = sok (Daemon_config.parse text) in
  Alcotest.(check int) "min" 3 cfg.Daemon_config.min_workers;
  Alcotest.(check int) "max" 9 cfg.Daemon_config.max_workers;
  Alcotest.(check int) "clients" 40 cfg.Daemon_config.max_clients;
  Alcotest.(check bool) "level" true (cfg.Daemon_config.log_level = Vlog.Info);
  Alcotest.(check int) "filters" 2 (List.length cfg.Daemon_config.log_filters);
  (* defaults survive for unset keys *)
  Alcotest.(check int) "anonymous default" 20 cfg.Daemon_config.max_anonymous_clients;
  (* roundtrip through the printer *)
  let cfg2 = sok (Daemon_config.parse (Daemon_config.to_file cfg)) in
  Alcotest.(check bool) "print/parse roundtrip" true (cfg = cfg2)

let test_config_rejections () =
  List.iter
    (fun text ->
      match Daemon_config.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [
      "nonsense";
      "unknown_key = 1";
      "min_workers = \"five\"";
      "min_workers = -2";
      "log_level = 7";
      "log_filters = 3";
      "log_filters = \"bad\"";
      "log_outputs = \"1:nowhere\"";
      "min_workers = 1 extra";
    ]

let test_config_applied_to_daemon () =
  let config =
    {
      quiet_config with
      Daemon_config.min_workers = 3;
      max_workers = 7;
      prio_workers = 2;
      max_clients = 11;
    }
  in
  with_daemon ~config (fun _ d ->
      let srv = Option.get (Daemon.find_server d "libvirtd") in
      let stats = Threadpool.stats (Server_obj.pool srv) in
      Alcotest.(check int) "min applied" 3 stats.Threadpool.min_workers;
      Alcotest.(check int) "max applied" 7 stats.Threadpool.max_workers;
      Alcotest.(check int) "prio applied" 2 stats.Threadpool.prio_workers;
      let limits = Server_obj.limits srv in
      Alcotest.(check int) "clients applied" 11 limits.Server_obj.max_clients)

(* --- rpc client engine ----------------------------------------------- *)

let test_rpc_client_concurrent_calls () =
  with_daemon (fun daemon _ ->
      let client =
        match
          Rpc_client.connect ~address:(daemon ^ "-sock") ~kind:Transport.Unix_sock
            ~program:Rp.program ~version:Rp.version ()
        with
        | Ok c -> c
        | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)
      in
      (* Many threads share one connection; replies must demultiplex by
         serial without crosstalk. *)
      let errors = Atomic.make 0 in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                for j = 1 to 50 do
                  let body = Printf.sprintf "thread-%d-call-%d" i j in
                  match
                    Rpc_client.call client ~procedure:(Rp.proc_to_int Rp.Proc_echo)
                      ~body ()
                  with
                  | Ok reply when reply = body -> ()
                  | Ok _ | Error _ -> Atomic.incr errors
                done)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "no crosstalk over 400 calls" 0 (Atomic.get errors);
      Rpc_client.close client)

let test_rpc_client_timeout () =
  (* A listener that accepts but never replies: the watchdog must fire. *)
  let addr = fresh_name "mute" in
  let listener = Netsim.listen addr (fun conn -> ignore (Transport.recv conn)) in
  let client =
    match
      Rpc_client.connect ~address:addr ~kind:Transport.Unix_sock ~program:Rp.program
        ~version:Rp.version ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)
  in
  let t0 = Unix.gettimeofday () in
  (match
     Rpc_client.call client ~procedure:(Rp.proc_to_int Rp.Proc_ping) ~timeout_s:0.2 ()
   with
   | Error e ->
     Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure)
   | Ok _ -> Alcotest.fail "mute server answered");
  Alcotest.(check bool) "fired near the deadline" true
    (Unix.gettimeofday () -. t0 < 2.0);
  Rpc_client.close client;
  Netsim.close_listener listener

let test_rpc_client_close_fails_pending () =
  let addr = fresh_name "mute" in
  let listener = Netsim.listen addr (fun conn -> ignore (Transport.recv conn)) in
  let client =
    match
      Rpc_client.connect ~address:addr ~kind:Transport.Unix_sock ~program:Rp.program
        ~version:Rp.version ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)
  in
  let outcome = ref None in
  let caller =
    Thread.create
      (fun () ->
        outcome :=
          Some (Rpc_client.call client ~procedure:(Rp.proc_to_int Rp.Proc_ping) ()))
      ()
  in
  Thread.delay 0.05;
  Rpc_client.close client;
  Thread.join caller;
  (match !outcome with
   | Some (Error _) -> ()
   | Some (Ok _) -> Alcotest.fail "pending call succeeded after close"
   | None -> Alcotest.fail "caller did not return");
  Alcotest.(check bool) "closed flag" true (Rpc_client.is_closed client);
  (match Rpc_client.call client ~procedure:1 () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "call on closed client succeeded");
  Netsim.close_listener listener

let () =
  Alcotest.run "daemon"
    [
      ( "establishment",
        [
          quick "all transports" test_connect_all_transports;
          quick "daemon down" test_connect_daemon_down;
          quick "unknown transport" test_unknown_transport_rejected;
          quick "unknown scheme via daemon" test_daemon_rejects_unknown_scheme;
        ] );
      ( "parity",
        [
          quick "remote sees direct state" test_remote_parity_with_direct;
          quick "networks and storage over rpc" test_remote_networks_and_storage;
          quick "error codes propagate" test_remote_error_codes_propagate;
          quick "migration unsupported over rpc" test_remote_migration_unsupported;
          quick "managed save over rpc" test_remote_managed_save;
        ] );
      ("events", [ quick "lifecycle events stream" test_events_stream_to_client ]);
      ( "clients",
        [
          quick "limit enforced" test_client_limit_enforced;
          quick "disconnect cleanup" test_disconnect_cleans_daemon_state;
          quick "authentication tracking" test_client_authentication_tracking;
        ] );
      ( "hostile traffic",
        [
          quick "malformed packet drops connection" test_malformed_packet_drops_connection;
          quick "unknown program" test_unknown_program_answered_with_error;
          quick "wrong version" test_wrong_version_rejected;
          quick "call without open" test_call_without_open_rejected;
          quick "double open" test_double_open_rejected;
        ] );
      ( "rpc client",
        [
          quick "concurrent calls demultiplex" test_rpc_client_concurrent_calls;
          quick "timeout watchdog" test_rpc_client_timeout;
          quick "close fails pending calls" test_rpc_client_close_fails_pending;
        ] );
      ( "assembly & config",
        [
          quick "two servers" test_daemon_structure;
          quick "name collision" test_daemon_name_collision;
          quick "stop closes clients" test_daemon_stop_closes_clients;
          quick "config parsing" test_config_parsing;
          quick "config rejections" test_config_rejections;
          quick "config applied" test_config_applied_to_daemon;
        ] );
    ]
