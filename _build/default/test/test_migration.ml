(* Live migration: the generic precopy algorithm over the qemu, xen and
   test drivers — convergence, dirty-page behaviour, statistics, memory
   fidelity, and failure recovery. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image

let () = Ovirt.initialize ()

type harness = { label : string; uri : unit -> string; virt_type : string; os : Vm_config.os_kind }

let harnesses =
  [
    {
      label = "test";
      uri = (fun () -> "test://" ^ fresh_name "mt" ^ "/");
      virt_type = "test";
      os = Vm_config.Hvm;
    };
    {
      label = "qemu";
      uri = (fun () -> "qemu://" ^ fresh_name "mq" ^ "/system");
      virt_type = "kvm";
      os = Vm_config.Hvm;
    };
    {
      label = "xen";
      uri = (fun () -> "xen://" ^ fresh_name "mx" ^ "/");
      virt_type = "xen";
      os = Vm_config.Paravirt;
    };
  ]

let start_domain h conn ?(memory_kib = 64 * 1024) name =
  let cfg = Vm_config.make ~os:h.os ~memory_kib name in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg)) in
  vok (Domain.create dom);
  dom

(* --- basic migration on each capable driver ------------------------------ *)

let test_migrate_basic h () =
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let name = fresh_name "mig" in
  let dom = start_domain h src name in
  let dest_dom, stats = vok (Domain.migrate dom ~dest:dst ()) in
  Alcotest.(check string) "same name at destination" name (Domain.name dest_dom);
  Alcotest.(check bool) "running at destination" true
    (vok (Domain.get_state dest_dom) = Vm_state.Running);
  Alcotest.(check bool) "inactive at source" true
    (match Domain.get_state dom with
     | Ok Vm_state.Shutoff -> true
     | Ok _ -> false
     | Error _ -> true (* xen: hypervisor forgot it; driver keeps config *));
  (* Full first round moved every page. *)
  let pages = (64 * 1024) / Guest_image.bytes_per_page in
  Alcotest.(check bool) "at least all pages moved" true
    (stats.Domain.pages_transferred >= pages);
  Alcotest.(check int) "bytes match pages" (stats.Domain.pages_transferred * Guest_image.bytes_per_page)
    stats.Domain.bytes_transferred

let test_migrate_quiet_guest_converges_fast h () =
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let dom = start_domain h src (fresh_name "mig") in
  let _, stats = vok (Domain.migrate dom ~dest:dst ()) in
  Alcotest.(check int) "one precopy round" 1 stats.Domain.rounds;
  Alcotest.(check int) "no downtime pages" 0 stats.Domain.downtime_pages

(* --- precopy behaviour (test driver gives us the source image) ----------- *)

let test_migrate_dirty_guest_more_rounds () =
  let h = List.hd harnesses in
  let src_uri = h.uri () and dst_uri = h.uri () in
  let src = vok (Connect.open_uri src_uri) in
  let dst = vok (Connect.open_uri dst_uri) in
  let dom = start_domain h src ~memory_kib:(256 * 1024) (fresh_name "busy") in
  (* The dirty hook models guest load: dirty 10% of pages per round for
     the first three rounds, then go quiet. *)
  let dirtied_rounds = ref 0 in
  let dirty_hook round =
    if round <= 3 then begin
      incr dirtied_rounds;
      (* The source image is reachable through the migration machinery
         itself: use a driver-internal dirty via the public hook only. *)
      ()
    end
  in
  let _, stats = vok (Domain.migrate dom ~dest:dst ~dirty_hook ()) in
  Alcotest.(check bool) "hook consulted per round" true (!dirtied_rounds >= 1);
  Alcotest.(check bool) "rounds bounded" true (stats.Domain.rounds <= 8);
  ignore src_uri

let test_migrate_converges_under_load_via_driver_hooks () =
  (* Use the driver ops directly so the hook can actually dirty the live
     source image, exercising multi-round precopy. *)
  let h = List.hd harnesses in
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let name = fresh_name "busy" in
  let dom = start_domain h src ~memory_kib:(512 * 1024) name in
  let src_ops = vok (Connect.ops src) in
  let begin_ = Option.get src_ops.Driver.migrate_begin in
  let ms = vok (begin_ name) in
  let src_img = ms.Driver.mig_image in
  ms.Driver.mig_abort ();
  (* real migration with a hook dirtying the live image *)
  let seeds = ref 0 in
  let dirty_hook round =
    if round <= 4 then begin
      incr seeds;
      Guest_image.dirty_randomly src_img ~rate:0.05 ~seed:(round * 97)
    end
  in
  let _, stats = vok (Domain.migrate dom ~dest:dst ~dirty_hook ()) in
  Alcotest.(check bool) "multiple precopy rounds" true (stats.Domain.rounds >= 2);
  Alcotest.(check bool) "more pages than memory (retransmissions)" true
    (stats.Domain.pages_transferred > Guest_image.page_count src_img)

let test_migrate_memory_fidelity () =
  (* Source memory contents must arrive bit-identical. *)
  let h = List.hd harnesses in
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let name = fresh_name "fidelity" in
  let dom = start_domain h src ~memory_kib:(128 * 1024) name in
  let src_ops = vok (Connect.ops src) in
  let ms = vok ((Option.get src_ops.Driver.migrate_begin) name) in
  let src_img = ms.Driver.mig_image in
  ms.Driver.mig_abort ();
  Guest_image.dirty_randomly src_img ~rate:0.3 ~seed:7;
  let src_checksum_before = Guest_image.checksum src_img in
  let dest_dom, _ = vok (Domain.migrate dom ~dest:dst ()) in
  let dst_ops = vok (Connect.ops dst) in
  let ms2 = vok ((Option.get dst_ops.Driver.migrate_begin) (Domain.name dest_dom)) in
  let dst_img = ms2.Driver.mig_image in
  ms2.Driver.mig_abort ();
  Alcotest.(check bool) "checksum preserved" true
    (Guest_image.checksum dst_img = src_checksum_before)

(* --- failure handling ----------------------------------------------------- *)

let test_migrate_paused_source_rejected () =
  let h = List.hd harnesses in
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let dom = start_domain h src (fresh_name "p") in
  vok (Domain.suspend dom);
  expect_verr Verror.Operation_invalid (Domain.migrate dom ~dest:dst ())

let test_migrate_dest_capacity_failure_resumes_source () =
  let h = List.hd harnesses in
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  (* Fill the destination so prepare fails on capacity. *)
  let filler =
    start_domain h dst ~memory_kib:(15 * 1024 * 1024 + 400 * 1024) (fresh_name "filler")
  in
  ignore filler;
  let dom = start_domain h src ~memory_kib:(1024 * 1024) (fresh_name "victim") in
  expect_verr Verror.Resource_exhausted (Domain.migrate dom ~dest:dst ());
  (* The source must still be running after the failed migration. *)
  Alcotest.(check bool) "source still runs" true
    (vok (Domain.get_state dom) = Vm_state.Running)

let test_migrate_name_clash_at_destination () =
  let h = List.hd harnesses in
  let src = vok (Connect.open_uri (h.uri ())) in
  let dst = vok (Connect.open_uri (h.uri ())) in
  let name = fresh_name "clash" in
  let dom = start_domain h src name in
  let _other = start_domain h dst name in
  expect_error (Domain.migrate dom ~dest:dst ());
  Alcotest.(check bool) "source unharmed" true
    (vok (Domain.get_state dom) = Vm_state.Running)

let test_migrate_between_driver_kinds_rejected () =
  (* qemu -> xen: destination cannot run the config (os mismatch). *)
  let q = List.nth harnesses 1 and x = List.nth harnesses 2 in
  let src = vok (Connect.open_uri (q.uri ())) in
  let dst = vok (Connect.open_uri (x.uri ())) in
  let dom = start_domain q src (fresh_name "cross") in
  (* xen accepts hvm too in this reproduction, so force a config the xen
     driver rejects by migrating a container instead: use lxc handled in
     test_drivers.  Here check the qemu->xen path works or fails cleanly. *)
  (match Domain.migrate dom ~dest:dst () with
   | Ok (dest_dom, _) ->
     Alcotest.(check bool) "runs at destination" true
       (vok (Domain.get_state dest_dom) = Vm_state.Running)
   | Error _ ->
     Alcotest.(check bool) "source still runs after clean failure" true
       (vok (Domain.get_state dom) = Vm_state.Running))

let test_migrate_stats_scale_with_memory () =
  let h = List.hd harnesses in
  let measure memory_kib =
    let src = vok (Connect.open_uri (h.uri ())) in
    let dst = vok (Connect.open_uri (h.uri ())) in
    let dom = start_domain h src ~memory_kib (fresh_name "scale") in
    let _, stats = vok (Domain.migrate dom ~dest:dst ()) in
    stats.Domain.bytes_transferred
  in
  let small = measure (64 * 1024) in
  let large = measure (256 * 1024) in
  Alcotest.(check int) "4x memory = 4x bytes" (4 * small) large

let () =
  Alcotest.run "migration"
    [
      ( "basic",
        List.map (fun h -> quick h.label (test_migrate_basic h)) harnesses
        @ List.map
            (fun h -> quick (h.label ^ " converges") (test_migrate_quiet_guest_converges_fast h))
            harnesses );
      ( "precopy",
        [
          quick "dirty hook consulted" test_migrate_dirty_guest_more_rounds;
          quick "converges under load" test_migrate_converges_under_load_via_driver_hooks;
          quick "memory fidelity" test_migrate_memory_fidelity;
          quick "bytes scale with memory" test_migrate_stats_scale_with_memory;
        ] );
      ( "failures",
        [
          quick "paused source rejected" test_migrate_paused_source_rejected;
          quick "destination capacity failure resumes source"
            test_migrate_dest_capacity_failure_resumes_source;
          quick "name clash at destination" test_migrate_name_clash_at_destination;
          quick "cross-driver path clean" test_migrate_between_driver_kinds_rejected;
        ] );
    ]
