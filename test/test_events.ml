(* Resumable event streams (protocol v1.6): wire numbering stability and
   codec roundtrips, the replay ring's stamping/retention/gap semantics,
   end-to-end sequence monotonicity through the daemon, exactly-once
   delivery across dozens of forced disconnects, the cache flush a gap
   verdict forces (no stale reads), and the append-only compatibility
   contract — a v1.5-pinned daemon rejects the new procedures with the
   byte-identical unknown-procedure error and clients fall back to the
   plain registration. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Events = Ovirt.Events
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Server_obj = Ovirt.Server_obj
module Admin = Ovirt.Admin_client
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Faults = Ovnet.Faults
module Eventring = Ovdaemon.Eventring
module Rp = Protocol.Remote_protocol

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "evd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

(* Events compared as (seq, domain, lifecycle) triples. *)
let triple_of ev =
  (ev.Events.seq, ev.Events.domain_name, Events.lifecycle_name ev.Events.lifecycle)

let triples = Alcotest.(list (triple int string string))

(* --- wire stability -------------------------------------------------------- *)

let test_numbering_stable () =
  Alcotest.(check int) "Proc_event_resume wire number" 53
    (Rp.proc_to_int Rp.Proc_event_resume);
  Alcotest.(check int) "Proc_event_lifecycle_seq wire number" 54
    (Rp.proc_to_int Rp.Proc_event_lifecycle_seq);
  Alcotest.(check int) "resume gated on v1.6" 6
    (Rp.proc_min_minor Rp.Proc_event_resume);
  Alcotest.(check int) "seq push gated on v1.6" 6
    (Rp.proc_min_minor Rp.Proc_event_lifecycle_seq);
  Alcotest.(check bool) "this build speaks v1.6" true (Rp.minor >= 6);
  Alcotest.(check int) "Ev_resync wire code" 11
    (Events.lifecycle_to_int Events.Ev_resync);
  (match Rp.proc_of_int 53 with
   | Ok Rp.Proc_event_resume -> ()
   | _ -> Alcotest.fail "53 does not decode to Proc_event_resume");
  match Rp.proc_of_int 54 with
  | Ok Rp.Proc_event_lifecycle_seq -> ()
  | _ -> Alcotest.fail "54 does not decode to Proc_event_lifecycle_seq"

let test_codec_roundtrips () =
  List.iter
    (fun seq ->
      Alcotest.(check int) "event_resume roundtrip" seq
        (Rp.dec_event_resume (Rp.enc_event_resume seq)))
    [ -1; 0; 1; 123456789 ];
  let ev = { Events.domain_name = "vm-7"; lifecycle = Events.Ev_suspended; seq = 42 } in
  Alcotest.(check triples) "seq_event roundtrip" [ triple_of ev ]
    [ triple_of (Rp.dec_seq_event (Rp.enc_seq_event ev)) ];
  let reply =
    {
      Rp.rr_gap = true;
      rr_head = 99;
      rr_oldest = 90;
      rr_events =
        [
          { Events.domain_name = "a"; lifecycle = Events.Ev_defined; seq = 98 };
          { Events.domain_name = "b"; lifecycle = Events.Ev_stopped; seq = 99 };
        ];
    }
  in
  let back = Rp.dec_resume_reply (Rp.enc_resume_reply reply) in
  Alcotest.(check bool) "gap flag" reply.Rp.rr_gap back.Rp.rr_gap;
  Alcotest.(check int) "head" reply.Rp.rr_head back.Rp.rr_head;
  Alcotest.(check int) "oldest" reply.Rp.rr_oldest back.Rp.rr_oldest;
  Alcotest.(check triples) "replayed events"
    (List.map triple_of reply.Rp.rr_events)
    (List.map triple_of back.Rp.rr_events)

(* --- the replay ring ------------------------------------------------------- *)

let emit_n bus n =
  for i = 1 to n do
    Events.emit bus ~domain_name:(string_of_int i) Events.Ev_started
  done

let test_ring_stamps_and_retains () =
  let bus = Events.create_bus () in
  let ring = Eventring.create ~capacity:4 ~bus in
  emit_n bus 6;
  let st = Eventring.stats ring in
  Alcotest.(check int) "head advanced" 6 st.Eventring.er_head;
  Alcotest.(check int) "oldest retained" 3 st.Eventring.er_oldest;
  Alcotest.(check int) "occupancy bounded" 4 st.Eventring.er_occupancy;
  Alcotest.(check int) "emitted counted" 6 st.Eventring.er_emitted;
  Alcotest.(check int) "capacity recorded" 4 st.Eventring.er_capacity

let test_ring_resume_replays_exactly () =
  let bus = Events.create_bus () in
  let ring = Eventring.create ~capacity:8 ~bus in
  emit_n bus 6;
  let got = ref [] in
  let _id, reply = Eventring.resume ring ~last_seq:3 (fun ev -> got := ev :: !got) in
  Alcotest.(check bool) "no gap" false reply.Rp.rr_gap;
  Alcotest.(check int) "head" 6 reply.Rp.rr_head;
  Alcotest.(check triples) "replay is exactly the missed suffix"
    [ (4, "4", "started"); (5, "5", "started"); (6, "6", "started") ]
    (List.map triple_of reply.Rp.rr_events);
  (* the same subscription carries on with live, stamped events *)
  Events.emit bus ~domain_name:"7" Events.Ev_stopped;
  Alcotest.(check triples) "live events stamped past the replay"
    [ (7, "7", "stopped") ]
    (List.map triple_of !got)

let test_ring_fresh_and_caught_up () =
  let bus = Events.create_bus () in
  let ring = Eventring.create ~capacity:8 ~bus in
  emit_n bus 3;
  let _id, fresh = Eventring.resume ring ~last_seq:(-1) (fun _ -> ()) in
  Alcotest.(check bool) "fresh: no gap" false fresh.Rp.rr_gap;
  Alcotest.(check triples) "fresh: no replay" [] (List.map triple_of fresh.Rp.rr_events);
  Alcotest.(check int) "fresh: told the head" 3 fresh.Rp.rr_head;
  let _id, caught = Eventring.resume ring ~last_seq:3 (fun _ -> ()) in
  Alcotest.(check bool) "caught up: no gap" false caught.Rp.rr_gap;
  Alcotest.(check triples) "caught up: empty replay" []
    (List.map triple_of caught.Rp.rr_events)

let test_ring_wrap_is_a_gap () =
  let bus = Events.create_bus () in
  let ring = Eventring.create ~capacity:2 ~bus in
  emit_n bus 5;
  (* retained: 4..5.  A client at 3 can still be made whole... *)
  let _id, edge = Eventring.resume ring ~last_seq:3 (fun _ -> ()) in
  Alcotest.(check bool) "oldest-1 is whole" false edge.Rp.rr_gap;
  Alcotest.(check triples) "full retained suffix replayed"
    [ (4, "4", "started"); (5, "5", "started") ]
    (List.map triple_of edge.Rp.rr_events);
  (* ...a client at 1 cannot, and neither can a position from a future
     (different daemon incarnation) stream. *)
  List.iter
    (fun last_seq ->
      let _id, reply = Eventring.resume ring ~last_seq (fun _ -> ()) in
      Alcotest.(check bool)
        (Printf.sprintf "last_seq %d is a gap" last_seq)
        true reply.Rp.rr_gap;
      Alcotest.(check triples) "gap replays nothing" []
        (List.map triple_of reply.Rp.rr_events);
      Alcotest.(check int) "gap still reports the head" 5 reply.Rp.rr_head;
      Alcotest.(check int) "and the oldest retained" 4 reply.Rp.rr_oldest)
    [ 1; 99 ];
  let st = Eventring.stats ring in
  Alcotest.(check int) "gaps counted" 2 st.Eventring.er_gaps;
  Alcotest.(check int) "resumes counted" 3 st.Eventring.er_resumes

let test_ring_unsubscribe () =
  let bus = Events.create_bus () in
  let ring = Eventring.create ~capacity:4 ~bus in
  let got = ref 0 in
  let id, _ = Eventring.resume ring ~last_seq:(-1) (fun _ -> incr got) in
  emit_n bus 2;
  Alcotest.(check int) "subscribed: delivered" 2 !got;
  Eventring.unsubscribe ring id;
  emit_n bus 2;
  Alcotest.(check int) "unsubscribed: no more deliveries" 2 !got;
  Alcotest.(check int) "subscriber count drops" 0
    (Eventring.stats ring).Eventring.er_subscribers

(* --- end-to-end through the daemon ----------------------------------------- *)

(* The producer opens the same test-driver node directly (no transport):
   the node registry is process-global, so its lifecycle traffic lands on
   the very bus the daemon's ring taps, while the fault plan on the
   daemon's listener only ever cuts the subscriber. *)
let producer_for host = vok (Connect.open_uri ("test://" ^ host ^ "/"))

let lifecycle_cycle producer ~host i =
  let dom =
    define_and_start producer ~virt_type:"test"
      ~name:(Printf.sprintf "%s-d%d" host i) ()
  in
  vok (Domain.destroy dom)

let test_seq_monotonic_through_daemon () =
  with_daemon (fun name _daemon ->
      let host = fresh_name "evmono" in
      let sub =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" host name))
      in
      let producer = producer_for host in
      for i = 1 to 5 do
        lifecycle_cycle producer ~host i
      done;
      (* define + start + destroy = 3 events per cycle *)
      Alcotest.(check bool) "all pushes arrived" true
        (eventually (fun () ->
             List.length (vok (Connect.event_history sub)) >= 15));
      let seqs =
        List.map (fun ev -> ev.Events.seq) (vok (Connect.event_history sub))
      in
      Alcotest.(check (list int)) "contiguous stream positions from 1"
        (List.init (List.length seqs) (fun i -> i + 1))
        seqs;
      Connect.close sub;
      Connect.close producer)

let test_replay_exactly_once_across_disconnects () =
  with_daemon (fun name daemon ->
      Drv_remote.reset_stats ();
      let host = fresh_name "evchaos" in
      Alcotest.(check bool) "plan attached" true
        (Netsim.set_listener_faults (Daemon.mgmt_address daemon)
           (Some (Faults.plan ~seed:13 [ Faults.Drop_after 8 ])));
      let sub =
        vok
          (Connect.open_uri
             (Printf.sprintf
                "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005&reconnect_max_delay=0.05&reconnect_seed=7"
                host name))
      in
      let mu = Mutex.create () in
      let seen = ref [] in
      let count () =
        Mutex.lock mu;
        let n = List.length !seen in
        Mutex.unlock mu;
        n
      in
      ignore
        (vok
           (Connect.subscribe_events sub (fun ev ->
                if ev.Events.seq > 0 then begin
                  Mutex.lock mu;
                  seen := ev.Events.seq :: !seen;
                  Mutex.unlock mu
                end))
          : Events.subscription);
      let producer = producer_for host in
      (* churn lifecycle traffic through cut after cut: the subscriber's
         own reads burn daemon-side frames, marching every connection into
         the Drop_after knife; transparent retries absorb each cut. *)
      let cycles = ref 0 in
      while
        (Drv_remote.stats ()).Drv_remote.st_reconnects < 20 && !cycles < 400
      do
        incr cycles;
        lifecycle_cycle producer ~host !cycles;
        ignore (Connect.list_domains sub)
      done;
      let mid = Drv_remote.stats () in
      Alcotest.(check bool)
        (Printf.sprintf "past twenty disconnects (%d reconnects in %d cycles)"
           mid.Drv_remote.st_reconnects !cycles)
        true
        (mid.Drv_remote.st_reconnects >= 20);
      (* now one clean outage with traffic inside it: sever the subscriber
         daemon-side, emit while it is away, and let the next call's
         resume replay what was missed. *)
      Alcotest.(check bool) "plan detached" true
        (Netsim.set_listener_faults (Daemon.mgmt_address daemon) None);
      let admin = vok (Admin.connect ~daemon:name ()) in
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      List.iter
        (fun c -> vok (Admin.client_disconnect srv c.Admin.cl_id))
        (vok (Admin.list_clients srv));
      let dsrv = Option.get (Daemon.find_server daemon "libvirtd") in
      Alcotest.(check bool) "severed" true
        (eventually (fun () -> fst (Server_obj.client_counts dsrv) = 0));
      lifecycle_cycle producer ~host (!cycles + 1);
      lifecycle_cycle producer ~host (!cycles + 2);
      ignore (vok (Connect.list_domains sub));
      (* the daemon's head is the ground truth for "nothing was lost" *)
      let est = vok (Admin.event_stats admin) in
      let head = est.Admin.es_head_seq in
      Alcotest.(check bool)
        (Printf.sprintf "every position delivered (%d of %d)" (count ()) head)
        true
        (eventually ~timeout_s:5.0 (fun () ->
             ignore (Connect.list_domains sub);
             count () >= head));
      Mutex.lock mu;
      let raw = !seen in
      Mutex.unlock mu;
      let seqs = List.sort_uniq compare raw in
      Alcotest.(check int) "no duplicates" (List.length raw) (List.length seqs);
      Alcotest.(check (list int)) "no silent losses: exactly 1..head"
        (List.init head (fun i -> i + 1))
        seqs;
      let stats = Drv_remote.stats () in
      Alcotest.(check bool)
        (Printf.sprintf "replay recovered the outage traffic (%d events)"
           stats.Drv_remote.st_events_replayed)
        true
        (stats.Drv_remote.st_events_replayed >= 6);
      Alcotest.(check int) "no gaps: the ring always retained our position" 0
        stats.Drv_remote.st_event_gaps;
      Alcotest.(check int) "no reconnect give-ups" 0 stats.Drv_remote.st_giveups;
      Alcotest.(check int) "one ring serves the node" 1 est.Admin.es_rings;
      Alcotest.(check int) "daemon counted no gaps either" 0 est.Admin.es_gapped;
      Admin.close admin;
      Connect.close sub;
      Connect.close producer)

let test_gap_flushes_caches_no_stale_reads () =
  let config = { quiet_config with Daemon_config.event_ring = 2 } in
  with_daemon ~config (fun name daemon ->
      Drv_remote.reset_stats ();
      let host = fresh_name "evgap" in
      let producer = producer_for host in
      let dom_name = host ^ "-vm" in
      let pdom = define_and_start producer ~virt_type:"test" ~name:dom_name () in
      let sub =
        vok
          (Connect.open_uri
             (Printf.sprintf
                "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005"
                host name))
      in
      let sdom = vok (Domain.lookup_by_name sub dom_name) in
      (* cache the running state; with events on, the entry has no TTL, so
         only an invalidation or a flush can ever refresh it *)
      Alcotest.(check bool) "running before the outage" true
        (vok (Domain.is_active sdom));
      (* sever the subscriber daemon-side *)
      let admin = vok (Admin.connect ~daemon:name ()) in
      let srv = vok (Admin.lookup_server admin "libvirtd") in
      List.iter
        (fun c -> vok (Admin.client_disconnect srv c.Admin.cl_id))
        (vok (Admin.list_clients srv));
      let dsrv = Option.get (Daemon.find_server daemon "libvirtd") in
      Alcotest.(check bool) "severed" true
        (eventually (fun () -> fst (Server_obj.client_counts dsrv) = 0));
      (* while the client is away: the cached domain stops and the tiny
         ring (capacity 2) wraps far past the client's position *)
      vok (Domain.destroy pdom);
      let other = define_and_start producer ~virt_type:"test" ~name:(host ^ "-other") () in
      vok (Domain.destroy other);
      (* force the reconnect with an uncached call: it fails on the severed
         wire, reconnects, and the resume comes back with a gap verdict that
         flushes the cache wholesale.  (The cached read alone would race the
         receiver thread noticing the close — until it does, the no-TTL
         entry is still served.)  After the flush the read below must hit
         the daemon — a stale cache would still say "running". *)
      ignore (vok (Connect.list_domains sub));
      Alcotest.(check bool) "no stale read after the gap" false
        (vok (Domain.is_active sdom));
      Alcotest.(check bool) "resync event reached subscribers" true
        (List.exists
           (fun ev -> ev.Events.lifecycle = Events.Ev_resync)
           (vok (Connect.event_history sub)));
      let stats = Drv_remote.stats () in
      Alcotest.(check bool)
        (Printf.sprintf "gap counted (%d)" stats.Drv_remote.st_event_gaps)
        true
        (stats.Drv_remote.st_event_gaps >= 1);
      Alcotest.(check bool) "reconnected" true (stats.Drv_remote.st_reconnects >= 1);
      let est = vok (Admin.event_stats admin) in
      Alcotest.(check bool) "daemon served the gap verdict" true
        (est.Admin.es_gapped >= 1);
      Alcotest.(check bool) "both resumes counted" true (est.Admin.es_resumes >= 2);
      Admin.close admin;
      Connect.close sub;
      Connect.close producer)

(* --- compatibility with a v1.5 daemon -------------------------------------- *)

let v15_config = { quiet_config with Daemon_config.proto_minor = 5 }

let test_v15_daemon_rejects_new_procs () =
  with_daemon ~config:v15_config (fun _name daemon ->
      let rpc =
        vok
          (Rpc_client.connect ~address:(Daemon.mgmt_address daemon)
             ~kind:Transport.Unix_sock ~program:Rp.program ~version:Rp.version ())
      in
      Fun.protect
        ~finally:(fun () -> Rpc_client.close rpc)
        (fun () ->
          let expect_unknown proc body =
            match
              Rpc_client.call rpc ~procedure:(Rp.proc_to_int proc) ~body ()
            with
            | Ok _ ->
              Alcotest.failf "v1.5 daemon accepted procedure %d"
                (Rp.proc_to_int proc)
            | Error e ->
              Alcotest.(check bool) "rpc failure" true
                (e.Verror.code = Verror.Rpc_failure);
              (* byte-identical to a build that has never heard of the
                 procedure: clients key version negotiation on this *)
              Alcotest.(check string) "unknown-procedure error"
                (Printf.sprintf "unknown remote procedure %d" (Rp.proc_to_int proc))
                e.Verror.message
          in
          expect_unknown Rp.Proc_event_resume (Rp.enc_event_resume (-1));
          expect_unknown Rp.Proc_event_lifecycle_seq
            (Rp.enc_seq_event
               { Events.domain_name = "d"; lifecycle = Events.Ev_started; seq = 1 })))

let test_v15_daemon_client_falls_back_to_plain () =
  with_daemon ~config:v15_config (fun name _daemon ->
      Drv_remote.reset_stats ();
      let host = fresh_name "evplain" in
      (* resume=1 is the default: against the old daemon the client must
         silently fall back to the plain registration *)
      let sub =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" host name))
      in
      let producer = producer_for host in
      lifecycle_cycle producer ~host 1;
      Alcotest.(check bool) "events still flow" true
        (eventually (fun () ->
             List.length (vok (Connect.event_history sub)) >= 3));
      List.iter
        (fun ev ->
          Alcotest.(check int) "legacy pushes are unsequenced" 0 ev.Events.seq)
        (vok (Connect.event_history sub));
      let stats = Drv_remote.stats () in
      Alcotest.(check int) "no replays against an old daemon" 0
        stats.Drv_remote.st_events_replayed;
      Alcotest.(check int) "no gaps against an old daemon" 0
        stats.Drv_remote.st_event_gaps;
      Connect.close sub;
      Connect.close producer)

let () =
  Alcotest.run "events"
    [
      ( "wire",
        [
          quick "numbering-stable" test_numbering_stable;
          quick "codec-roundtrips" test_codec_roundtrips;
        ] );
      ( "ring",
        [
          quick "stamps-and-retains" test_ring_stamps_and_retains;
          quick "resume-replays-exactly" test_ring_resume_replays_exactly;
          quick "fresh-and-caught-up" test_ring_fresh_and_caught_up;
          quick "wrap-is-a-gap" test_ring_wrap_is_a_gap;
          quick "unsubscribe" test_ring_unsubscribe;
        ] );
      ( "daemon",
        [
          quick "seq-monotonic" test_seq_monotonic_through_daemon;
          quick "replay-exactly-once" test_replay_exactly_once_across_disconnects;
          quick "gap-flushes-caches" test_gap_flushes_caches_no_stale_reads;
        ] );
      ( "compat",
        [
          quick "v15-rejects-new-procs" test_v15_daemon_rejects_new_procs;
          quick "v15-falls-back-to-plain" test_v15_daemon_client_falls_back_to_plain;
        ] );
    ]
