(* Overload protection, end to end: v1.4 deadline envelopes on the wire
   (including rejection by minor-pinned daemons, byte-identical to a
   pre-v1.4 build), queue-expiry of deadlined calls, admission-control
   shedding with [Overloaded]/retry-after surfaced to the remote driver,
   the client-side circuit breaker, and the stuck-worker watchdog
   restoring pool capacity under a wedged "hypervisor". *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Admin = Ovirt.Admin_client
module Vm_state = Vmm.Vm_state
module Transport = Ovnet.Transport
module Rp = Protocol.Remote_protocol

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "ovld" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

let remote_uri ?(params = "") ~daemon node =
  Printf.sprintf "test+unix://%s/?daemon=%s%s" node daemon params

(* The mgmt pool of [daemon], for counter/limit assertions. *)
let with_pool daemon f =
  let admin = vok (Admin.connect ~daemon ()) in
  Fun.protect
    ~finally:(fun () -> Admin.close admin)
    (fun () -> f (vok (Admin.lookup_server admin "libvirtd")))

(* Slow ops: flip the node's simulated hypervisor latency on (the knob
   is sticky on the node, set from any open that carries the param). *)
let set_latency node us =
  Connect.close
    (vok (Connect.open_uri (Printf.sprintf "test://%s/?latency_us=%d" node us)))

(* --- protocol surface ------------------------------------------------------ *)

let test_v14_numbers_stable () =
  Alcotest.(check int) "build minor" 7 Rp.minor;
  Alcotest.(check int) "deadline envelope is 49" 49
    (Rp.proc_to_int Rp.Proc_call_deadline);
  Alcotest.(check int) "needs minor 4" 4 (Rp.proc_min_minor Rp.Proc_call_deadline);
  (* The v1.3 numbers must not have moved. *)
  Alcotest.(check int) "vol_lookup still 48" 48 (Rp.proc_to_int Rp.Proc_vol_lookup)

let test_deadline_codec_roundtrip () =
  let check_rt budget proc body =
    Alcotest.(check bool)
      (Printf.sprintf "roundtrip %d/%d" budget proc)
      true
      (Rp.dec_deadline_call (Rp.enc_deadline_call ~budget_ms:budget ~proc body)
      = (budget, proc, body))
  in
  check_rt 1500 38 "x";
  check_rt 1 49 "";
  check_rt 600000 12 (String.make 4096 'b')

(* --- wire compatibility ---------------------------------------------------- *)

let raw_client daemon =
  match
    Rpc_client.connect ~address:(daemon ^ "-sock") ~kind:Transport.Unix_sock
      ~program:Rp.program ~version:Rp.version ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)

let raw_call client proc body =
  Rpc_client.call client ~procedure:(Rp.proc_to_int proc) ~body ()

let raw_open client =
  vok
    (Result.map Rp.dec_unit_body
       (raw_call client Rp.Proc_open
          (Rp.enc_string_body (Printf.sprintf "test://%s/" (fresh_name "wire")))))

let envelope ?(budget_ms = 5000) proc body =
  Rp.enc_deadline_call ~budget_ms ~proc:(Rp.proc_to_int proc) body

let test_old_daemons_reject_deadline_proc () =
  (* A v1.2 or v1.3 daemon must answer the deadline envelope exactly like
     a build that predates it: same code, same wording as any unknown
     procedure number. *)
  List.iter
    (fun minor ->
      let config = { quiet_config with Daemon_config.proto_minor = minor } in
      with_daemon ~config (fun daemon _ ->
          let client = raw_client daemon in
          raw_open client;
          (match raw_call client Rp.Proc_call_deadline (envelope Rp.Proc_echo "hi") with
           | Ok _ -> Alcotest.failf "v1.%d daemon accepted the envelope" minor
           | Error e ->
             Alcotest.(check bool) "rpc_failure" true
               (e.Verror.code = Verror.Rpc_failure);
             Alcotest.(check string)
               (Printf.sprintf "v1.%d wording identical to unknown proc" minor)
               (Printf.sprintf "unknown remote procedure %d"
                  (Rp.proc_to_int Rp.Proc_call_deadline))
               e.Verror.message);
          (* And the daemon is not poisoned: the next plain call works. *)
          Alcotest.(check string) "still serves" "ok"
            (vok (raw_call client Rp.Proc_echo "ok"));
          Rpc_client.close client))
    [ 2; 3 ]

let test_v14_daemon_serves_envelope () =
  with_daemon (fun daemon _ ->
      let client = raw_client daemon in
      raw_open client;
      (* The reply is the inner procedure's reply, not a wrapper. *)
      Alcotest.(check string) "unwrapped echo" "ping"
        (vok (raw_call client Rp.Proc_call_deadline (envelope Rp.Proc_echo "ping")));
      (* Envelopes do not nest. *)
      (match
         raw_call client Rp.Proc_call_deadline
           (envelope Rp.Proc_call_deadline (envelope Rp.Proc_echo "x"))
       with
       | Ok _ -> Alcotest.fail "nested envelope accepted"
       | Error e ->
         Alcotest.(check bool) "nested refused as rpc_failure" true
           (e.Verror.code = Verror.Rpc_failure));
      (* A batch cannot smuggle one past the dispatcher's peek. *)
      let batch =
        Rp.enc_batch_call
          [ (Rp.proc_to_int Rp.Proc_call_deadline, envelope Rp.Proc_echo "x") ]
      in
      (match Rp.dec_batch_reply (vok (raw_call client Rp.Proc_call_batch batch)) with
       | [ (false, body) ] ->
         Alcotest.(check bool) "envelope-in-batch refused" true
           ((Rp.dec_error body).Verror.code = Verror.Rpc_failure)
       | _ -> Alcotest.fail "envelope-in-batch not isolated");
      Rpc_client.close client)

(* --- chaos: deadlines, shedding, watchdog ---------------------------------- *)

(* One ordinary worker, one priority worker: control-plane procedures
   (opens, lookups, reads) keep flowing while the single ordinary worker
   is busy with a slow lifecycle op. *)
let one_worker_config =
  { quiet_config with Daemon_config.min_workers = 1; max_workers = 1; prio_workers = 1 }

(* Wait until the single ordinary worker has parked, run [issue], then
   wait until it has picked the resulting job up — the only moment the
   pool is observably "wedged on [issue]'s call". *)
let wedge_on srv issue =
  let parked () = (vok (Admin.threadpool_info srv)).Admin.tp_free_workers = 1 in
  Alcotest.(check bool) "worker parked" true (eventually parked);
  let t = issue () in
  let busy () =
    let i = vok (Admin.threadpool_info srv) in
    i.Admin.tp_free_workers = 0 && i.Admin.tp_job_queue_depth = 0
  in
  Alcotest.(check bool) "worker picked the slow job up" true (eventually busy);
  t

let test_deadline_expires_in_queue_e2e () =
  with_daemon ~config:one_worker_config (fun daemon _ ->
      let node = fresh_name "dlnode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let victim = fresh_name "victim" in
      let dvictim = define_and_start direct ~virt_type:"test" ~name:victim () in
      (* The wedge must outlast the 100 ms budget by a margin that holds
         even when a loaded machine delays delivery of the budgeted call
         by a scheduling quantum or three. *)
      set_latency node 600_000;
      let plain = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let budgeted =
        vok (Connect.open_uri (remote_uri ~params:"&timeout=0.1" ~daemon node))
      in
      (* Every budgeted call travels as a deadline envelope; a generously
         budgeted one against an idle pool just works. *)
      let bvictim = vok (Domain.lookup_by_name budgeted victim) in
      with_pool daemon (fun srv ->
          (* Wedge the worker on a 250 ms suspend of the seeded domain... *)
          let wedge =
            wedge_on srv (fun () ->
                Thread.create
                  (fun () -> ignore (Domain.suspend (vok (Domain.lookup_by_name plain "test"))))
                  ())
          in
          (* ...then queue a suspend whose 100 ms budget lapses long
             before the worker frees up.  The daemon must answer
             "expired in queue" and never run the transition. *)
          (match Domain.suspend bvictim with
           | Ok () -> Alcotest.fail "expired call was executed"
           | Error e ->
             Alcotest.(check bool) "operation_failed" true
               (e.Verror.code = Verror.Operation_failed);
             Alcotest.(check bool)
               (Printf.sprintf "says expired (got %S)" e.Verror.message)
               true
               (String.length e.Verror.message >= 16
               &&
               let re = "deadline expired" in
               let rec find i =
                 if i + String.length re > String.length e.Verror.message then false
                 else if String.sub e.Verror.message i (String.length re) = re then
                   true
                 else find (i + 1)
               in
               find 0));
          Thread.join wedge;
          let ps = vok (Admin.pool_stats srv) in
          Alcotest.(check int) "one expiry counted" 1 ps.Admin.ps_jobs_expired;
          (* The strongest form of "never executed": the domain whose
             suspend expired is still running. *)
          Alcotest.(check bool) "victim untouched" true
            ((vok (Domain.get_info dvictim)).Driver.di_state = Vm_state.Running));
      Connect.close budgeted;
      Connect.close plain;
      Connect.close direct)

let test_admission_control_sheds () =
  let config = { one_worker_config with Daemon_config.job_queue_limit = 2 } in
  with_daemon ~config (fun daemon _ ->
      Drv_remote.reset_stats ();
      let node = fresh_name "shednode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let names = List.init 8 (fun i -> Printf.sprintf "storm%d" i) in
      List.iter
        (fun n -> ignore (define_and_start direct ~virt_type:"test" ~name:n ()))
        names;
      set_latency node 250_000;
      (* One connection per client so shed replies land on the caller
         that overflowed the queue, with the breaker off to observe
         every raw rejection. *)
      let conns =
        List.map
          (fun n ->
            let c =
              vok (Connect.open_uri (remote_uri ~params:"&cache=0&breaker=0" ~daemon node))
            in
            (c, vok (Domain.lookup_by_name c n)))
          names
      in
      let results = Array.make (List.length conns) (Ok ()) in
      let threads =
        List.mapi
          (fun i (_, dom) ->
            Thread.create (fun () -> results.(i) <- Domain.suspend dom) ())
          conns
      in
      List.iter Thread.join threads;
      let oks = ref 0 and sheds = ref 0 in
      Array.iter
        (function
          | Ok () -> incr oks
          | Error e when e.Verror.code = Verror.Overloaded ->
            incr sheds;
            (match Verror.retry_after_ms e with
             | Some ms -> Alcotest.(check bool) "hint positive" true (ms > 0)
             | None -> Alcotest.fail "shed reply lost its retry-after hint")
          | Error e -> Alcotest.failf "unexpected error: %s" (Verror.to_string e))
        results;
      Alcotest.(check int) "every call answered" 8 (!oks + !sheds);
      Alcotest.(check bool)
        (Printf.sprintf "queue bound forced sheds (%d ok / %d shed)" !oks !sheds)
        true
        (!sheds >= 1 && !oks >= 2);
      (* Daemon-side and client-side accounting agree with what callers saw. *)
      with_pool daemon (fun srv ->
          let ps = vok (Admin.pool_stats srv) in
          Alcotest.(check int) "daemon counted the sheds" !sheds ps.Admin.ps_jobs_shed;
          Alcotest.(check int) "limit visible" 2 ps.Admin.ps_job_queue_limit;
          Alcotest.(check bool) "bound holds" true (ps.Admin.ps_job_queue_depth <= 2));
      let st = Drv_remote.stats () in
      Alcotest.(check int) "client counted the sheds" !sheds st.Drv_remote.st_overloaded;
      Alcotest.(check int) "breaker=0 never opens" 0 st.Drv_remote.st_breaker_opens;
      (* Exactly the admitted suspends took effect — a shed is a clean
         refusal, not a half-applied op. *)
      let paused =
        List.fold_left
          (fun acc n ->
            let d = vok (Domain.lookup_by_name direct n) in
            if (vok (Domain.get_info d)).Driver.di_state = Vm_state.Paused then acc + 1
            else acc)
          0 names
      in
      Alcotest.(check int) "admitted ops applied, shed ops not" !oks paused;
      List.iter (fun (c, _) -> Connect.close c) conns;
      Connect.close direct)

let test_breaker_opens_and_recovers () =
  let config = { one_worker_config with Daemon_config.job_queue_limit = 1 } in
  with_daemon ~config (fun daemon _ ->
      Drv_remote.reset_stats ();
      let node = fresh_name "brknode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      List.iter
        (fun n -> ignore (define_and_start direct ~virt_type:"test" ~name:n ()))
        [ "brk1"; "brk2"; "brk3" ];
      set_latency node 300_000;
      let plain = vok (Connect.open_uri (remote_uri ~params:"&cache=0" ~daemon node)) in
      let victim = vok (Connect.open_uri (remote_uri ~params:"&cache=0&breaker=2" ~daemon node)) in
      (* Teach the pool's job-duration EWMA that jobs are slow, so the
         advertised retry-after (= the breaker's open window) is wide
         enough to observe deterministically. *)
      let d_test = vok (Domain.lookup_by_name plain "test") in
      vok (Domain.suspend d_test);
      vok (Domain.resume d_test);
      let d1 = vok (Domain.lookup_by_name plain "brk1") in
      let d2 = vok (Domain.lookup_by_name plain "brk2") in
      let d3 = vok (Domain.lookup_by_name victim "brk3") in
      with_pool daemon (fun srv ->
          (* Occupy the worker and fill the queue (limit 1). *)
          let w1 =
            wedge_on srv (fun () ->
                Thread.create (fun () -> ignore (Domain.suspend d1)) ())
          in
          let w2 = Thread.create (fun () -> ignore (Domain.suspend d2)) () in
          let queued () =
            (vok (Admin.threadpool_info srv)).Admin.tp_job_queue_depth = 1
          in
          Alcotest.(check bool) "queue full" true (eventually queued);
          let expect_overloaded what = function
            | Ok () -> Alcotest.failf "%s: call was served" what
            | Error e ->
              Alcotest.(check bool) (what ^ " is overloaded") true
                (e.Verror.code = Verror.Overloaded)
          in
          (* Two consecutive sheds trip the k=2 breaker... *)
          expect_overloaded "first shed" (Domain.suspend d3);
          expect_overloaded "second shed" (Domain.suspend d3);
          let st = Drv_remote.stats () in
          Alcotest.(check int) "two sheds on the wire" 2 st.Drv_remote.st_overloaded;
          Alcotest.(check int) "breaker opened" 1 st.Drv_remote.st_breaker_opens;
          (* ...and the next call fails fast, locally: same error shape,
             no wire traffic. *)
          let wire_before = (Drv_remote.stats ()).Drv_remote.st_calls in
          expect_overloaded "fast fail" (Domain.suspend d3);
          let st = Drv_remote.stats () in
          Alcotest.(check int) "no wire traffic while open" wire_before
            st.Drv_remote.st_calls;
          Alcotest.(check bool) "fast fail counted" true
            (st.Drv_remote.st_breaker_fastfails >= 1);
          Thread.join w1;
          Thread.join w2);
      (* Past the retry-after window the half-open probe finds a drained
         daemon: the probe is served and the breaker closes. *)
      Thread.delay 1.0;
      vok (Domain.suspend d3);
      let st = Drv_remote.stats () in
      Alcotest.(check int) "probe served, no reopen" 1 st.Drv_remote.st_breaker_opens;
      Alcotest.(check int) "no further sheds" 2 st.Drv_remote.st_overloaded;
      vok (Domain.resume d3);
      Connect.close victim;
      Connect.close plain;
      Connect.close direct)

let test_watchdog_restores_capacity () =
  let config =
    {
      quiet_config with
      Daemon_config.min_workers = 2;
      max_workers = 2;
      prio_workers = 1;
      wall_limit_ms = 100;
    }
  in
  with_daemon ~config (fun daemon _ ->
      let fast_node = fresh_name "fast" and slow_node = fresh_name "slow" in
      let dslow = vok (Connect.open_uri (Printf.sprintf "test://%s/" slow_node)) in
      ignore (define_and_start dslow ~virt_type:"test" ~name:"wedge2" ());
      let rfast = vok (Connect.open_uri (remote_uri ~params:"&cache=0" ~daemon fast_node)) in
      let rslow = vok (Connect.open_uri (remote_uri ~params:"&cache=0" ~daemon slow_node)) in
      let dfast = vok (Domain.lookup_by_name rfast "test") in
      let s1 = vok (Domain.lookup_by_name rslow "test") in
      let s2 = vok (Domain.lookup_by_name rslow "wedge2") in
      (* Healthy-op cost: a burst of normal-class balloon ops through the
         pool, best of three. *)
      let measure () =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 30 do
          vok (Domain.set_memory dfast 1024)
        done;
        Unix.gettimeofday () -. t0
      in
      let baseline = Float.min (measure ()) (Float.min (measure ()) (measure ())) in
      (* Wedge both ordinary workers: two 500 ms lifecycle ops (the
         second spends its time waiting on the node's write lock — the
         watchdog must treat a lock-waiter past the wall limit exactly
         like a sleeper). *)
      set_latency slow_node 500_000;
      let w1 = Thread.create (fun () -> ignore (Domain.suspend s1)) () in
      let w2 = Thread.create (fun () -> ignore (Domain.suspend s2)) () in
      with_pool daemon (fun srv ->
          let written_off () =
            (vok (Admin.pool_stats srv)).Admin.ps_workers_stuck = 2
          in
          Alcotest.(check bool) "both wedged workers written off" true
            (eventually ~timeout_s:5.0 written_off);
          (* Replacements restore healthy throughput to within 10% of the
             no-fault baseline while the originals are still wedged. *)
          let recovered () = measure () <= baseline *. 1.1 in
          Alcotest.(check bool) "healthy throughput within 10% of baseline" true
            (eventually ~timeout_s:5.0 recovered);
          Thread.join w1;
          Thread.join w2;
          (* The wedged jobs finishing retires the written-off workers:
             no capacity leak in either direction. *)
          let settled () =
            let ps = vok (Admin.pool_stats srv) in
            let i = vok (Admin.threadpool_info srv) in
            ps.Admin.ps_workers_stuck_now = 0 && i.Admin.tp_n_workers = 2
          in
          Alcotest.(check bool) "stuck workers retired, capacity exact" true
            (eventually ~timeout_s:5.0 settled);
          let ps = vok (Admin.pool_stats srv) in
          Alcotest.(check int) "exactly the two wedged written off" 2
            ps.Admin.ps_workers_stuck);
      (* The wedged suspends themselves completed (the stuck thread is
         written off, not killed). *)
      Alcotest.(check bool) "wedged ops still completed" true
        ((vok (Domain.get_info s1)).Driver.di_state = Vm_state.Paused
        && (vok (Domain.get_info s2)).Driver.di_state = Vm_state.Paused);
      Connect.close rslow;
      Connect.close rfast;
      Connect.close dslow)

let () =
  Alcotest.run "overload"
    [
      ( "protocol",
        [
          quick "v1.4 numbers stable" test_v14_numbers_stable;
          quick "deadline codec roundtrip" test_deadline_codec_roundtrip;
        ] );
      ( "wire compat",
        [
          quick "v1.2/v1.3 daemons reject the envelope"
            test_old_daemons_reject_deadline_proc;
          quick "v1.4 daemon serves the envelope" test_v14_daemon_serves_envelope;
        ] );
      ( "chaos",
        [
          quick "deadline expires in queue, op never runs"
            test_deadline_expires_in_queue_e2e;
          quick "admission control sheds with retry-after"
            test_admission_control_sheds;
          quick "circuit breaker opens and recovers"
            test_breaker_opens_and_recovers;
          quick "watchdog restores capacity" test_watchdog_restores_capacity;
        ] );
    ]
