(* Workerpool: limits, demand-driven growth, cooperative shrink, priority
   workers, drain/shutdown, and failure accounting. *)

open Testutil

let make ?(min_workers = 2) ?(max_workers = 4) ?(prio_workers = 1) () =
  Threadpool.create ~name:(fresh_name "pool") ~min_workers ~max_workers
    ~prio_workers ()

let test_initial_state () =
  let pool = make () in
  let s = Threadpool.stats pool in
  Alcotest.(check int) "min" 2 s.Threadpool.min_workers;
  Alcotest.(check int) "max" 4 s.Threadpool.max_workers;
  Alcotest.(check int) "spawned at min" 2 s.Threadpool.n_workers;
  Alcotest.(check int) "prio" 1 s.Threadpool.prio_workers;
  Alcotest.(check int) "queue empty" 0 s.Threadpool.job_queue_depth;
  Threadpool.shutdown pool

let test_executes_jobs () =
  let pool = make () in
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Threadpool.push pool (fun () -> Atomic.incr counter)
  done;
  Threadpool.drain pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter);
  Alcotest.(check int) "completed counter" 100
    (Threadpool.stats pool).Threadpool.jobs_completed;
  Threadpool.shutdown pool

let test_invalid_limits () =
  let expect_invalid f =
    match f () with
    | exception Threadpool.Invalid_limits _ -> ()
    | _ -> Alcotest.fail "invalid limits accepted"
  in
  expect_invalid (fun () ->
      make ~min_workers:5 ~max_workers:2 ());
  expect_invalid (fun () -> make ~max_workers:0 ());
  expect_invalid (fun () -> make ~prio_workers:(-1) ());
  let pool = make () in
  expect_invalid (fun () ->
      Threadpool.set_limits pool ~min_workers:10 ~max_workers:3 ();
      pool);
  Threadpool.shutdown pool

let test_grows_on_demand () =
  let pool = make ~min_workers:1 ~max_workers:8 () in
  (* Block several workers so new pushes find nobody free. *)
  let release = Mutex.create () in
  Mutex.lock release;
  let started = Atomic.make 0 in
  for _ = 1 to 6 do
    Threadpool.push pool (fun () ->
        Atomic.incr started;
        Mutex.lock release;
        Mutex.unlock release)
  done;
  let grew =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.n_workers >= 6)
  in
  Alcotest.(check bool) "pool grew on demand" true grew;
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_never_exceeds_max () =
  let pool = make ~min_workers:1 ~max_workers:3 () in
  let release = Mutex.create () in
  Mutex.lock release;
  for _ = 1 to 20 do
    Threadpool.push pool (fun () ->
        Mutex.lock release;
        Mutex.unlock release)
  done;
  Thread.delay 0.05;
  let s = Threadpool.stats pool in
  Alcotest.(check bool) "capped at max" true (s.Threadpool.n_workers <= 3);
  Alcotest.(check bool) "rest queued" true (s.Threadpool.job_queue_depth >= 17 - 3);
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_shrinks_cooperatively () =
  let pool = make ~min_workers:6 ~max_workers:8 () in
  Alcotest.(check int) "starts at 6" 6 (Threadpool.stats pool).Threadpool.n_workers;
  Threadpool.set_limits pool ~min_workers:1 ~max_workers:2 ();
  let shrank =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.n_workers <= 2)
  in
  Alcotest.(check bool) "workers retired on wakeup" true shrank;
  (* The pool still works afterwards. *)
  let hit = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set hit true);
  Threadpool.drain pool;
  Alcotest.(check bool) "post-shrink job ran" true (Atomic.get hit);
  Threadpool.shutdown pool

let test_priority_worker_count_adjustable () =
  let pool = make ~prio_workers:2 () in
  Alcotest.(check int) "two prio" 2 (Threadpool.stats pool).Threadpool.prio_workers;
  Threadpool.set_limits pool ~prio_workers:5 ();
  let grew = eventually (fun () -> (Threadpool.stats pool).Threadpool.prio_workers = 5) in
  Alcotest.(check bool) "prio grew" true grew;
  Threadpool.set_limits pool ~prio_workers:1 ();
  let shrank =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.prio_workers = 1)
  in
  Alcotest.(check bool) "prio shrank" true shrank;
  Threadpool.shutdown pool

let test_priority_jobs_progress_when_ordinary_wedged () =
  (* The design guarantee: every ordinary worker stuck on a hung
     "hypervisor call" must not prevent high-priority work. *)
  let pool = make ~min_workers:2 ~max_workers:2 ~prio_workers:1 () in
  let release = Mutex.create () in
  Mutex.lock release;
  for _ = 1 to 2 do
    Threadpool.push pool (fun () ->
        Mutex.lock release;
        Mutex.unlock release)
  done;
  Thread.delay 0.02;
  (* Ordinary workers are both wedged; queue a priority job. *)
  let ran = Atomic.make false in
  Threadpool.push pool ~priority:true (fun () -> Atomic.set ran true);
  let progressed = eventually (fun () -> Atomic.get ran) in
  Alcotest.(check bool) "priority job ran while pool wedged" true progressed;
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_priority_workers_ignore_ordinary_jobs () =
  (* A pool with zero ordinary workers must leave normal jobs queued. *)
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~min_workers:0 ~max_workers:1
      ~prio_workers:2 ()
  in
  (* Wedge the single ordinary slot the pool may spawn. *)
  let release = Mutex.create () in
  Mutex.lock release;
  Threadpool.push pool (fun () ->
      Mutex.lock release;
      Mutex.unlock release);
  Thread.delay 0.02;
  let ran = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set ran true);
  Thread.delay 0.05;
  Alcotest.(check bool) "normal job not stolen by prio workers" false
    (Atomic.get ran);
  Mutex.unlock release;
  Threadpool.drain pool;
  Alcotest.(check bool) "ran after ordinary freed" true (Atomic.get ran);
  Threadpool.shutdown pool

let test_failed_jobs_counted () =
  let pool = make () in
  Threadpool.push pool (fun () -> failwith "boom");
  Threadpool.push pool (fun () -> ());
  Threadpool.drain pool;
  Alcotest.(check int) "one failure" 1 (Threadpool.failed_jobs pool);
  Alcotest.(check int) "both completed" 2
    (Threadpool.stats pool).Threadpool.jobs_completed;
  Threadpool.shutdown pool

let test_push_after_shutdown_rejected () =
  let pool = make () in
  Threadpool.shutdown pool;
  match Threadpool.push pool (fun () -> ()) with
  | exception Threadpool.Invalid_limits _ -> ()
  | () -> Alcotest.fail "push accepted after shutdown"

let test_shutdown_is_idempotent () =
  let pool = make () in
  Threadpool.shutdown pool;
  Threadpool.shutdown pool;
  Alcotest.(check int) "no workers" 0 (Threadpool.stats pool).Threadpool.n_workers

let test_concurrent_pushers () =
  let pool = make ~min_workers:2 ~max_workers:6 () in
  let counter = Atomic.make 0 in
  let pushers =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 200 do
              Threadpool.push pool (fun () -> Atomic.incr counter)
            done)
          ())
  in
  List.iter Thread.join pushers;
  Threadpool.drain pool;
  Alcotest.(check int) "all 1600 ran" 1600 (Atomic.get counter);
  Threadpool.shutdown pool

(* --- overload protection -------------------------------------------------- *)

(* Wedge the pool's single ordinary worker on [release] and wait until it
   has actually picked the job up. *)
let wedge_worker pool release =
  Mutex.lock release;
  let picked_up = Atomic.make false in
  Threadpool.push pool (fun () ->
      Atomic.set picked_up true;
      Mutex.lock release;
      Mutex.unlock release);
  (* free_workers is 0 both before the worker thread first parks and while
     it runs, so only the job's own signal proves it left the queue. *)
  let busy = eventually (fun () -> Atomic.get picked_up) in
  Alcotest.(check bool) "worker wedged" true busy

let test_queue_bound_rejects () =
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~job_queue_limit:4 ~min_workers:1
      ~max_workers:1 ~prio_workers:1 ()
  in
  let release = Mutex.create () in
  wedge_worker pool release;
  for _ = 1 to 4 do
    match Threadpool.submit pool (fun () -> ()) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "rejected below the bound"
  done;
  (* Overflow is rejected immediately — never blocked on — with a hint. *)
  (match Threadpool.submit pool (fun () -> ()) with
   | Ok () -> Alcotest.fail "admitted above the bound"
   | Error { Threadpool.retry_after_ms } ->
     Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0));
  let s = Threadpool.stats pool in
  Alcotest.(check int) "one shed" 1 s.Threadpool.jobs_shed;
  Alcotest.(check bool) "bound holds" true (s.Threadpool.job_queue_depth <= 4);
  (* Priority (control-plane) traffic bypasses the bound. *)
  (match Threadpool.submit pool ~priority:true (fun () -> ()) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "priority job shed");
  Mutex.unlock release;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let test_raising_job_keeps_worker () =
  let pool = make ~min_workers:2 ~max_workers:2 () in
  for _ = 1 to 10 do
    Threadpool.push pool (fun () -> failwith "boom")
  done;
  Threadpool.drain pool;
  let s = Threadpool.stats pool in
  Alcotest.(check int) "workers intact" 2 s.Threadpool.n_workers;
  Alcotest.(check int) "failures counted" 10 s.Threadpool.jobs_failed;
  let hit = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set hit true);
  Threadpool.drain pool;
  Alcotest.(check bool) "pool still serves" true (Atomic.get hit);
  Threadpool.shutdown pool

let test_set_limits_under_load () =
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~job_queue_limit:8 ~min_workers:1
      ~max_workers:1 ~prio_workers:1 ()
  in
  let release = Mutex.create () in
  wedge_worker pool release;
  for _ = 1 to 6 do
    Threadpool.push pool (fun () -> ())
  done;
  (* Shrinking the bound below the live depth sheds new work only. *)
  Threadpool.set_limits pool ~job_queue_limit:2 ();
  (match Threadpool.submit pool (fun () -> ()) with
   | Ok () -> Alcotest.fail "admitted above the shrunken bound"
   | Error _ -> ());
  Alcotest.(check int) "queued jobs kept" 6
    (Threadpool.stats pool).Threadpool.job_queue_depth;
  (* Growing re-admits. *)
  Threadpool.set_limits pool ~job_queue_limit:50 ();
  (match Threadpool.submit pool (fun () -> ()) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "rejected below the regrown bound");
  (* Worker limits can move while the only worker is mid-job. *)
  Threadpool.set_limits pool ~min_workers:1 ~max_workers:4 ();
  Mutex.unlock release;
  Threadpool.drain pool;
  Alcotest.(check int) "all queued jobs ran" 8
    (Threadpool.stats pool).Threadpool.jobs_completed;
  Threadpool.shutdown pool

let test_deadline_expires_in_queue () =
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~min_workers:1 ~max_workers:1
      ~prio_workers:0 ()
  in
  let release = Mutex.create () in
  wedge_worker pool release;
  let ran = Atomic.make false in
  let expired = Atomic.make false in
  (match
     Threadpool.submit pool
       ~deadline:(Unix.gettimeofday () +. 0.05)
       ~on_expired:(fun () -> Atomic.set expired true)
       (fun () -> Atomic.set ran true)
   with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "submit rejected");
  Thread.delay 0.12;
  (* Deadline lapsed while queued behind the wedge: the job must be
     dropped at dequeue, never executed. *)
  Mutex.unlock release;
  Threadpool.drain pool;
  Alcotest.(check bool) "expired job never ran" false (Atomic.get ran);
  Alcotest.(check bool) "on_expired fired" true (Atomic.get expired);
  Alcotest.(check int) "expiry counted" 1
    (Threadpool.stats pool).Threadpool.jobs_expired;
  Threadpool.shutdown pool

let test_fair_queuing_light_client_not_starved () =
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~min_workers:1 ~max_workers:1
      ~prio_workers:0 ()
  in
  let release = Mutex.create () in
  wedge_worker pool release;
  let order_mutex = Mutex.create () in
  let order = ref [] in
  let submit source tag =
    match
      Threadpool.submit pool ~source (fun () ->
          Mutex.lock order_mutex;
          order := tag :: !order;
          Mutex.unlock order_mutex)
    with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "unbounded pool shed a job"
  in
  (* Two greedy clients stack 40 jobs each before a light client's two
     arrive; round-robin service must still serve the light client among
     the first rounds instead of behind the 80-job backlog. *)
  for _ = 1 to 40 do submit 1L "A" done;
  for _ = 1 to 40 do submit 2L "B" done;
  submit 3L "C";
  submit 3L "C";
  Mutex.unlock release;
  Threadpool.drain pool;
  let completions = List.rev !order in
  Alcotest.(check int) "all ran" 82 (List.length completions);
  let last_c =
    List.fold_left
      (fun (i, last) tag -> (i + 1, if tag = "C" then i else last))
      (0, -1) completions
    |> snd
  in
  Alcotest.(check bool)
    (Printf.sprintf "light client served early (position %d)" last_c)
    true
    (last_c >= 0 && last_c < 10);
  Threadpool.shutdown pool

let test_watchdog_replaces_stuck_worker () =
  let pool =
    Threadpool.create ~name:(fresh_name "pool") ~wall_limit_ms:50 ~min_workers:1
      ~max_workers:1 ~prio_workers:0 ()
  in
  let release = Mutex.create () in
  wedge_worker pool release;
  (* Watchdog writes the wedged worker off and spawns a replacement. *)
  let replaced =
    eventually (fun () ->
        let s = Threadpool.stats pool in
        s.Threadpool.workers_stuck = 1 && s.Threadpool.workers_stuck_now = 1)
  in
  Alcotest.(check bool) "stuck worker detected and written off" true replaced;
  let hit = Atomic.make false in
  Threadpool.push pool (fun () -> Atomic.set hit true);
  let progressed = eventually (fun () -> Atomic.get hit) in
  Alcotest.(check bool) "replacement serves while original wedged" true progressed;
  (* The wedged job finishing retires its written-off worker quietly. *)
  Mutex.unlock release;
  let retired =
    eventually (fun () -> (Threadpool.stats pool).Threadpool.workers_stuck_now = 0)
  in
  Alcotest.(check bool) "stuck worker retired on completion" true retired;
  Alcotest.(check int) "capacity intact" 1 (Threadpool.stats pool).Threadpool.n_workers;
  Threadpool.drain pool;
  Threadpool.shutdown pool

let prop_stats_invariants =
  qcheck_case ~count:30 "stats invariants across random configs"
    QCheck.(triple (int_range 0 4) (int_range 1 6) (int_range 0 3))
    (fun (min_w, extra, prio) ->
      let max_w = min_w + extra in
      let pool =
        Threadpool.create ~name:(fresh_name "prop") ~min_workers:min_w
          ~max_workers:max_w ~prio_workers:prio ()
      in
      for _ = 1 to 20 do
        Threadpool.push pool (fun () -> ())
      done;
      Threadpool.drain pool;
      let s = Threadpool.stats pool in
      let invariant =
        s.Threadpool.n_workers >= s.Threadpool.min_workers
        && s.Threadpool.n_workers <= s.Threadpool.max_workers
        && s.Threadpool.free_workers <= s.Threadpool.n_workers
        && s.Threadpool.prio_workers = prio
        && s.Threadpool.jobs_completed = 20
      in
      Threadpool.shutdown pool;
      invariant)

let () =
  Alcotest.run "threadpool"
    [
      ( "lifecycle",
        [
          quick "initial state" test_initial_state;
          quick "executes jobs" test_executes_jobs;
          quick "invalid limits rejected" test_invalid_limits;
          quick "push after shutdown rejected" test_push_after_shutdown_rejected;
          quick "shutdown idempotent" test_shutdown_is_idempotent;
        ] );
      ( "dynamic sizing",
        [
          quick "grows on demand" test_grows_on_demand;
          quick "never exceeds max" test_never_exceeds_max;
          quick "shrinks cooperatively" test_shrinks_cooperatively;
          quick "priority worker count adjustable" test_priority_worker_count_adjustable;
        ] );
      ( "priority workers",
        [
          quick "progress while ordinary wedged"
            test_priority_jobs_progress_when_ordinary_wedged;
          quick "never steal ordinary jobs" test_priority_workers_ignore_ordinary_jobs;
        ] );
      ( "robustness",
        [
          quick "failed jobs counted" test_failed_jobs_counted;
          quick "raising job keeps worker" test_raising_job_keeps_worker;
          quick "concurrent pushers" test_concurrent_pushers;
          prop_stats_invariants;
        ] );
      ( "overload protection",
        [
          quick "queue bound rejects" test_queue_bound_rejects;
          quick "set_limits under load" test_set_limits_under_load;
          quick "deadline expires in queue" test_deadline_expires_in_queue;
          quick "fair queuing protects light client"
            test_fair_queuing_light_client_not_starved;
          quick "watchdog replaces stuck worker"
            test_watchdog_replaces_stuck_worker;
        ] );
    ]
