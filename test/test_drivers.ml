(* Drivers through the public API: uniform lifecycle semantics across all
   five backends, plus each driver's specific behaviours. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Capabilities = Ovirt.Capabilities
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state

let () = Ovirt.initialize ()

(* Per-driver harness: URI builder, virt_type, an OS kind the driver can
   run, and whether guest-cooperative shutdown exists. *)
type harness = {
  label : string;
  fresh_uri : unit -> string;
  virt_type : string;
  os : Vm_config.os_kind;
  has_shutdown : bool;
}

let harnesses =
  [
    {
      label = "test";
      fresh_uri = (fun () -> "test://" ^ fresh_name "tnode" ^ "/");
      virt_type = "test";
      os = Vm_config.Hvm;
      has_shutdown = true;
    };
    {
      label = "qemu";
      fresh_uri = (fun () -> "qemu://" ^ fresh_name "qnode" ^ "/system");
      virt_type = "kvm";
      os = Vm_config.Hvm;
      has_shutdown = true;
    };
    {
      label = "xen";
      fresh_uri = (fun () -> "xen://" ^ fresh_name "xnode" ^ "/");
      virt_type = "xen";
      os = Vm_config.Paravirt;
      has_shutdown = true;
    };
    {
      label = "lxc";
      fresh_uri = (fun () -> "lxc://" ^ fresh_name "lnode" ^ "/");
      virt_type = "lxc";
      os = Vm_config.Container_exe;
      has_shutdown = true;
    };
    {
      label = "esx";
      fresh_uri = (fun () -> "esx://root@" ^ fresh_name "enode" ^ "/?password=esx");
      virt_type = "vmware";
      os = Vm_config.Hvm;
      has_shutdown = false;
    };
  ]

let connect h = vok (Connect.open_uri (h.fresh_uri ()))

let define h conn name =
  let cfg = Vm_config.make ~os:h.os ~memory_kib:(8 * 1024) name in
  vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg))

let state dom = vok (Domain.get_state dom)

(* --- conformance scenario table ----------------------------------------- *)

(* One declarative step list per scenario, interpreted against every
   driver through the public API.  Acting steps drive the scenario's
   single domain; expectation steps assert on it; [Expect_err] wraps any
   acting step with the error code all drivers must agree on. *)

type step =
  | Define
  | Start
  | Suspend
  | Resume
  | Shutdown  (* guest-cooperative; consults the harness's support flag *)
  | Destroy
  | Undefine
  | Get_info
  | Lookup_name  (* by the scenario domain's name; checks the ref *)
  | Lookup_uuid
  | Lookup_unknown_uuid
  | Expect_state of Vm_state.state
  | Expect_listed_active of bool
  | Expect_listed_defined of bool
  | Expect_err of Verror.code * step
  | Expect_any_err of step

let rec step_name = function
  | Define -> "define"
  | Start -> "start"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Shutdown -> "shutdown"
  | Destroy -> "destroy"
  | Undefine -> "undefine"
  | Get_info -> "get-info"
  | Lookup_name -> "lookup-by-name"
  | Lookup_uuid -> "lookup-by-uuid"
  | Lookup_unknown_uuid -> "lookup-unknown-uuid"
  | Expect_state s -> "expect-state " ^ Vm_state.state_name s
  | Expect_listed_active b -> Printf.sprintf "expect-listed-active %b" b
  | Expect_listed_defined b -> Printf.sprintf "expect-listed-defined %b" b
  | Expect_err (code, s) ->
    Printf.sprintf "expect %s from %s" (Verror.code_name code) (step_name s)
  | Expect_any_err s -> "expect failure from " ^ step_name s

let run_scenario h steps () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let dom = ref None in
  let the_dom step =
    match !dom with
    | Some d -> d
    | None -> Alcotest.fail (step_name step ^ " before define")
  in
  (* Run one acting step to its result; expectations check and return unit. *)
  let rec exec step =
    match step with
    | Define ->
      let cfg = Vm_config.make ~os:h.os ~memory_kib:(8 * 1024) name in
      Result.map
        (fun d -> dom := Some d)
        (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg))
    | Start -> Domain.create (the_dom step)
    | Suspend -> Domain.suspend (the_dom step)
    | Resume -> Domain.resume (the_dom step)
    | Destroy -> Domain.destroy (the_dom step)
    | Undefine -> Domain.undefine (the_dom step)
    | Get_info -> Result.map ignore (Domain.get_info (the_dom step))
    | Shutdown ->
      if h.has_shutdown then
        Result.map
          (fun () ->
            Alcotest.(check bool) (h.label ^ ": off after shutdown") true
              (state (the_dom step) = Vm_state.Shutoff))
          (Domain.shutdown (the_dom step))
      else begin
        expect_verr Verror.Operation_unsupported (Domain.shutdown (the_dom step));
        Domain.destroy (the_dom step)
      end
    | Lookup_name ->
      Result.map
        (fun found ->
          Alcotest.(check string) (h.label ^ ": lookup by name") name
            (Domain.name found))
        (Domain.lookup_by_name conn name)
    | Lookup_uuid ->
      Result.map
        (fun found ->
          Alcotest.(check string) (h.label ^ ": lookup by uuid") name
            (Domain.name found))
        (Domain.lookup_by_uuid conn (Domain.uuid (the_dom step)))
    | Lookup_unknown_uuid ->
      Result.map ignore (Domain.lookup_by_uuid conn (Vmm.Uuid.generate ()))
    | Expect_state expected ->
      Alcotest.(check string)
        (h.label ^ ": state")
        (Vm_state.state_name expected)
        (Vm_state.state_name (state (the_dom step)));
      Ok ()
    | Expect_listed_active expected ->
      Alcotest.(check bool)
        (h.label ^ ": in active list")
        expected
        (List.exists
           (fun r -> r.Driver.dom_name = name)
           (vok (Connect.list_domains conn)));
      Ok ()
    | Expect_listed_defined expected ->
      Alcotest.(check bool)
        (h.label ^ ": in defined list")
        expected
        (List.mem name (vok (Connect.list_defined_domains conn)));
      Ok ()
    | Expect_err (code, inner) ->
      (match exec inner with
       | Error e when e.Verror.code = code -> Ok ()
       | Error e ->
         Alcotest.fail
           (Printf.sprintf "%s: %s failed with %s, wanted %s" h.label
              (step_name inner)
              (Verror.code_name e.Verror.code)
              (Verror.code_name code))
       | Ok () ->
         Alcotest.fail
           (Printf.sprintf "%s: %s succeeded, wanted %s" h.label (step_name inner)
              (Verror.code_name code)))
    | Expect_any_err inner ->
      (match exec inner with
       | Error _ -> Ok ()
       | Ok () ->
         Alcotest.fail
           (Printf.sprintf "%s: %s succeeded, wanted any error" h.label
              (step_name inner)))
  in
  List.iter
    (fun step ->
      match exec step with
      | Ok () -> ()
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "%s: %s failed: %s" h.label (step_name step)
             (Verror.to_string e)))
    steps

(* The shared semantics every backend must exhibit, whatever its
   substrate: lifecycle transitions with listing membership, the agreed
   error codes, and name/UUID resolution. *)
let scenarios =
  [
    ( "lifecycle",
      [
        Define;
        Expect_state Vm_state.Shutoff;
        Expect_listed_defined true;
        Expect_listed_active false;
        Start;
        Expect_state Vm_state.Running;
        Expect_listed_active true;
        Expect_listed_defined false;
        Suspend;
        Expect_state Vm_state.Paused;
        Resume;
        Expect_state Vm_state.Running;
        Destroy;
        Expect_state Vm_state.Shutoff;
        Undefine;
        Expect_err (Verror.No_domain, Get_info);
      ] );
    ( "error codes",
      [
        Expect_err (Verror.No_domain, Lookup_name);
        Define;
        Start;
        Expect_err (Verror.Operation_invalid, Start);
        Expect_err (Verror.Operation_invalid, Resume);
        Expect_any_err Undefine;
        Destroy;
        Expect_any_err Destroy;
        Expect_err (Verror.Operation_invalid, Suspend);
      ] );
    ( "lookup",
      [
        Define;
        Lookup_name;
        Lookup_uuid;
        Expect_err (Verror.No_domain, Lookup_unknown_uuid);
        Start;
        Lookup_name;
        Destroy;
      ] );
    ("guest shutdown", [ Define; Start; Shutdown ]);
  ]

let conformance_suite =
  List.concat_map
    (fun (sname, steps) ->
      List.map
        (fun h -> quick (sname ^ " / " ^ h.label) (run_scenario h steps))
        harnesses)
    scenarios

(* --- uniform semantics across every driver ------------------------------ *)

let test_uniform_duplicate_define h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let _dom = define h conn name in
  let other = Vm_config.make ~os:h.os name in
  expect_error (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type other))

let test_uniform_xml_roundtrip h () =
  let conn = connect h in
  let name = fresh_name "vm" in
  let dom = define h conn name in
  let xml = vok (Domain.xml_desc dom) in
  let cfg, virt_type = sok (Vmm.Domxml.of_xml xml) in
  Alcotest.(check string) "virt type" h.virt_type virt_type;
  Alcotest.(check string) "name survives" name cfg.Vm_config.name

let test_uniform_capabilities h () =
  let conn = connect h in
  let caps = vok (Connect.capabilities conn) in
  Alcotest.(check bool) "runs its own OS kind" true
    (List.mem h.os caps.Capabilities.guest_os_kinds);
  Alcotest.(check bool) "define+start supported" true
    (Capabilities.supports caps Capabilities.Feat_define
    && Capabilities.supports caps Capabilities.Feat_start);
  Alcotest.(check bool) "shutdown capability" h.has_shutdown
    (Capabilities.supports caps Capabilities.Feat_shutdown)

let test_wrong_os_rejected h () =
  if h.label <> "test" then begin
    let conn = connect h in
    let wrong_os =
      match h.os with
      | Vm_config.Container_exe -> Vm_config.Hvm
      | Vm_config.Hvm | Vm_config.Paravirt -> Vm_config.Container_exe
    in
    let cfg = Vm_config.make ~os:wrong_os (fresh_name "wrong") in
    expect_verr Verror.Invalid_arg
      (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg))
  end

let uniform_suite make_test = List.map (fun h -> quick h.label (make_test h)) harnesses

(* --- driver-specific behaviours ----------------------------------------- *)

let test_qemu_argv_format () =
  let cfg = Vm_config.make ~memory_kib:(128 * 1024) ~vcpus:2 "argvm" in
  let argv = Drivers.Drv_qemu.proc_argv cfg in
  Alcotest.(check bool) "-S present" true (List.mem "-S" argv);
  Alcotest.(check bool) "name present" true (List.mem "argvm" argv);
  Alcotest.(check bool) "memory in MiB" true (List.mem "128" argv);
  Alcotest.(check bool) "smp" true (List.mem "2" argv);
  Alcotest.(check bool) "drive flag per disk" true (List.mem "-drive" argv)

let test_qemu_domain_id_is_pid () =
  let h = List.nth harnesses 1 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  let refs = vok (Connect.list_domains conn) in
  let entry = List.find (fun r -> r.Driver.dom_name = Domain.name dom) refs in
  Alcotest.(check bool) "pid >= 1000" true
    (match entry.Driver.dom_id with Some pid -> pid >= 1000 | None -> false)

let test_qemu_balloon () =
  let h = List.nth harnesses 1 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  expect_error (Domain.set_memory dom 4096);
  vok (Domain.create dom);
  vok (Domain.set_memory dom 4096);
  let info = vok (Domain.get_info dom) in
  Alcotest.(check int) "current shrunk" 4096 info.Driver.di_memory_kib;
  Alcotest.(check int) "max unchanged" (8 * 1024) info.Driver.di_max_mem_kib;
  expect_verr Verror.Invalid_arg (Domain.set_memory dom (64 * 1024 * 1024));
  expect_verr Verror.Invalid_arg (Domain.set_memory dom 0)

let test_xen_dom0_visible () =
  let conn = vok (Connect.open_uri ("xen://" ^ fresh_name "xn" ^ "/")) in
  let active = vok (Connect.list_domains conn) in
  Alcotest.(check bool) "Domain-0 listed" true
    (List.exists (fun r -> r.Driver.dom_name = "Domain-0") active);
  let dom0 = vok (Domain.lookup_by_name conn "Domain-0") in
  expect_error (Domain.destroy dom0)

let test_xen_hypervisor_forgets_inactive () =
  let h = List.nth harnesses 2 in
  let conn = connect h in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  Alcotest.(check int) "dom0 + guest" 2 (List.length (vok (Connect.list_domains conn)));
  vok (Domain.destroy dom);
  Alcotest.(check int) "only dom0 active" 1
    (List.length (vok (Connect.list_domains conn)));
  Alcotest.(check bool) "still defined" true
    (List.mem (Domain.name dom) (vok (Connect.list_defined_domains conn)));
  vok (Domain.create dom);
  Alcotest.(check bool) "restartable" true (state dom = Vm_state.Running)

let test_lxc_memory_resize_unbounded () =
  (* cgroup resize may exceed the configured memory (unlike a balloon). *)
  let h = List.nth harnesses 3 in
  let conn = connect h in
  let dom = define h conn (fresh_name "ct") in
  vok (Domain.set_memory dom (64 * 1024));
  let info = vok (Domain.get_info dom) in
  Alcotest.(check int) "cgroup limit" (64 * 1024) info.Driver.di_memory_kib

let test_lxc_no_migration () =
  let h = List.nth harnesses 3 in
  let conn = connect h in
  let dest = connect h in
  let dom = define h conn (fresh_name "ct") in
  vok (Domain.create dom);
  expect_verr Verror.Operation_unsupported (Domain.migrate dom ~dest ())

let test_esx_auth_failure () =
  match Connect.open_uri ("esx://root@" ^ fresh_name "esx" ^ "/?password=wrong") with
  | Error e -> Alcotest.(check bool) "auth_failed" true (e.Verror.code = Verror.Auth_failed)
  | Ok _ -> Alcotest.fail "bad password connected"

let test_esx_stateless_across_connections () =
  let host = fresh_name "esx" in
  let uri = Printf.sprintf "esx://root@%s/?password=esx" host in
  let conn1 = vok (Connect.open_uri uri) in
  let h = List.nth harnesses 4 in
  let name = fresh_name "vm" in
  let cfg = Vm_config.make ~os:h.os name in
  let _ = vok (Domain.define_xml conn1 (Vmm.Domxml.to_xml ~virt_type:"vmware" cfg)) in
  Connect.close conn1;
  let conn2 = vok (Connect.open_uri uri) in
  Alcotest.(check bool) "visible to new session" true
    (List.mem name (vok (Connect.list_defined_domains conn2)));
  let caps = vok (Connect.capabilities conn2) in
  Alcotest.(check bool) "stateless" false caps.Capabilities.stateful

let test_esx_close_logs_out () =
  let host = fresh_name "esx" in
  let uri = Printf.sprintf "esx://root@%s/?password=esx" host in
  let conn = vok (Connect.open_uri uri) in
  let esx = Drivers.Drv_esx.get_host host in
  Alcotest.(check int) "session open" 1 (Hvsim.Esx_host.session_count esx);
  Connect.close conn;
  Alcotest.(check int) "session closed" 0 (Hvsim.Esx_host.session_count esx)

let test_default_test_node_has_domain () =
  let conn = vok (Connect.open_uri "test:///default") in
  Alcotest.(check bool) "the canonical 'test' domain runs" true
    (List.exists (fun r -> r.Driver.dom_name = "test") (vok (Connect.list_domains conn)))

let test_capacity_exhaustion () =
  let h = List.hd harnesses in
  let conn = connect h in
  let cfg = Vm_config.make ~os:h.os ~memory_kib:(100 * 1024 * 1024) (fresh_name "huge") in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:h.virt_type cfg)) in
  expect_verr Verror.Resource_exhausted (Domain.create dom)

let test_events_emitted_by_drivers () =
  let h = List.hd harnesses in
  let conn = connect h in
  let seen = ref [] in
  let _ =
    vok
      (Connect.subscribe_events conn (fun ev ->
           seen := ev.Ovirt.Events.lifecycle :: !seen))
  in
  let dom = define h conn (fresh_name "vm") in
  vok (Domain.create dom);
  vok (Domain.suspend dom);
  vok (Domain.resume dom);
  vok (Domain.destroy dom);
  vok (Domain.undefine dom);
  List.iter
    (fun e ->
      Alcotest.(check bool) (Ovirt.Events.lifecycle_name e) true (List.mem e !seen))
    Ovirt.Events.
      [ Ev_defined; Ev_started; Ev_suspended; Ev_resumed; Ev_stopped; Ev_undefined ]

(* --- managed save --------------------------------------------------- *)

let save_capable = [ List.nth harnesses 0; List.nth harnesses 1 ]
let save_incapable = [ List.nth harnesses 2; List.nth harnesses 3; List.nth harnesses 4 ]

let test_managed_save_cycle h () =
  let conn = connect h in
  let name = fresh_name "sv" in
  let dom = define h conn name in
  (* not running: save refused; no image yet *)
  expect_verr Verror.Operation_invalid (Domain.save dom);
  Alcotest.(check bool) "no image initially" false (vok (Domain.has_managed_save dom));
  vok (Domain.create dom);
  vok (Domain.save dom);
  Alcotest.(check bool) "stopped by save" true (state dom = Vm_state.Shutoff);
  Alcotest.(check bool) "image exists" true (vok (Domain.has_managed_save dom));
  (* restore brings it back and consumes the image *)
  vok (Domain.restore dom);
  Alcotest.(check bool) "running again" true (state dom = Vm_state.Running);
  Alcotest.(check bool) "image consumed" false (vok (Domain.has_managed_save dom));
  (* restore without an image refused *)
  vok (Domain.destroy dom);
  expect_verr Verror.Operation_invalid (Domain.restore dom)

let test_managed_save_memory_fidelity h () =
  let conn = connect h in
  let name = fresh_name "svf" in
  let dom = define h conn name in
  vok (Domain.create dom);
  (* dirty the guest, checkpoint, restore, compare *)
  let ops = vok (Ovirt.Connect.ops conn) in
  let ms = vok ((Option.get ops.Driver.migrate_begin) name) in
  let img = ms.Driver.mig_image in
  ms.Driver.mig_abort ();
  Vmm.Guest_image.dirty_randomly img ~rate:0.4 ~seed:3;
  let checksum = Vmm.Guest_image.checksum img in
  vok (Domain.save dom);
  vok (Domain.restore dom);
  let ms2 = vok ((Option.get ops.Driver.migrate_begin) name) in
  let img2 = ms2.Driver.mig_image in
  ms2.Driver.mig_abort ();
  Alcotest.(check bool) "memory restored bit-identically" true
    (Vmm.Guest_image.checksum img2 = checksum)

let test_managed_save_unsupported h () =
  let conn = connect h in
  let dom = define h conn (fresh_name "sv") in
  vok (Domain.create dom);
  expect_verr Verror.Operation_unsupported (Domain.save dom);
  expect_verr Verror.Operation_unsupported (Domain.has_managed_save dom)

let test_undefine_discards_save () =
  let h = List.hd harnesses in
  let conn = connect h in
  let name = fresh_name "sv" in
  let dom = define h conn name in
  vok (Domain.create dom);
  vok (Domain.save dom);
  vok (Domain.undefine dom);
  (* redefine: fresh identity, no stale image *)
  let dom2 = define h conn name in
  Alcotest.(check bool) "no stale image" false (vok (Domain.has_managed_save dom2))

let () =
  Alcotest.run "drivers"
    [
      ("conformance", conformance_suite);
      ("uniform duplicate define", uniform_suite test_uniform_duplicate_define);
      ("uniform xml roundtrip", uniform_suite test_uniform_xml_roundtrip);
      ("uniform capabilities", uniform_suite test_uniform_capabilities);
      ("wrong OS rejected", uniform_suite test_wrong_os_rejected);
      ( "qemu specifics",
        [
          quick "command-line format" test_qemu_argv_format;
          quick "domain id is the pid" test_qemu_domain_id_is_pid;
          quick "memory balloon" test_qemu_balloon;
        ] );
      ( "xen specifics",
        [
          quick "Domain-0 visible and protected" test_xen_dom0_visible;
          quick "hypervisor forgets inactive domains" test_xen_hypervisor_forgets_inactive;
        ] );
      ( "lxc specifics",
        [
          quick "cgroup resize beyond definition" test_lxc_memory_resize_unbounded;
          quick "no migration" test_lxc_no_migration;
        ] );
      ( "esx specifics",
        [
          quick "auth failure" test_esx_auth_failure;
          quick "stateless across connections" test_esx_stateless_across_connections;
          quick "close logs out" test_esx_close_logs_out;
        ] );
      ( "managed save",
        List.map (fun h -> quick h.label (test_managed_save_cycle h)) save_capable
        @ List.map
            (fun h -> quick (h.label ^ " fidelity") (test_managed_save_memory_fidelity h))
            save_capable
        @ List.map
            (fun h -> quick (h.label ^ " unsupported") (test_managed_save_unsupported h))
            save_incapable
        @ [ quick "undefine discards the image" test_undefine_discards_save ] );
      ( "misc",
        [
          quick "test:///default canonical domain" test_default_test_node_has_domain;
          quick "capacity exhaustion" test_capacity_exhaustion;
          quick "lifecycle events emitted" test_events_emitted_by_drivers;
        ] );
    ]
