(* Core library: errors, URIs, capabilities, events, network and storage
   backends, driver registry selection. *)

open Testutil
module Verror = Ovirt_core.Verror
module Vuri = Ovirt_core.Vuri
module Capabilities = Ovirt_core.Capabilities
module Events = Ovirt_core.Events
module Net_backend = Ovirt_core.Net_backend
module Storage_backend = Ovirt_core.Storage_backend
module Driver = Ovirt_core.Driver

(* --- Verror ------------------------------------------------------------- *)

let all_codes =
  Verror.
    [
      Internal_error; No_connect; Invalid_conn; Invalid_arg; Operation_invalid;
      Operation_failed; Operation_unsupported; No_domain; Dup_name; No_network;
      No_storage_pool; No_storage_vol; Auth_failed; Rpc_failure; No_client;
      No_server; Resource_exhausted;
    ]

let test_error_codes_stable () =
  (* Wire codes are frozen; drift would break remote error reporting. *)
  let ints = List.map Verror.code_to_int all_codes in
  Alcotest.(check (list int)) "frozen numbering"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17 ]
    ints;
  List.iter
    (fun code ->
      Alcotest.(check bool) "roundtrip" true
        (Verror.code_of_int (Verror.code_to_int code) = code))
    all_codes;
  Alcotest.(check bool) "unknown maps to internal" true
    (Verror.code_of_int 9999 = Verror.Internal_error)

let test_error_formatting () =
  let e = Verror.make Verror.No_domain "no domain named \"x\"" in
  Alcotest.(check string) "to_string" "domain not found: no domain named \"x\""
    (Verror.to_string e);
  match Verror.error Verror.Invalid_arg "bad %d" 7 with
  | Error { Verror.code = Verror.Invalid_arg; message = "bad 7" } -> ()
  | _ -> Alcotest.fail "error builder mis-formatted"

(* --- Vuri --------------------------------------------------------------- *)

let parse s = vok (Vuri.parse s)

let test_uri_basic () =
  let u = parse "qemu:///system" in
  Alcotest.(check string) "scheme" "qemu" u.Vuri.scheme;
  Alcotest.(check (option string)) "no transport" None u.Vuri.transport;
  Alcotest.(check (option string)) "no host" None u.Vuri.host;
  Alcotest.(check string) "path" "/system" u.Vuri.path

let test_uri_full () =
  let u = parse "xen+tls://admin@node07.example:16514/sys?daemon=ovirtd2&x=1" in
  Alcotest.(check string) "scheme" "xen" u.Vuri.scheme;
  Alcotest.(check (option string)) "transport" (Some "tls") u.Vuri.transport;
  Alcotest.(check (option string)) "user" (Some "admin") u.Vuri.user;
  Alcotest.(check (option string)) "host" (Some "node07.example") u.Vuri.host;
  Alcotest.(check (option int)) "port" (Some 16514) u.Vuri.port;
  Alcotest.(check string) "path" "/sys" u.Vuri.path;
  Alcotest.(check (option string)) "param" (Some "ovirtd2") (Vuri.param u "daemon");
  Alcotest.(check (option string)) "missing param" None (Vuri.param u "nope")

let test_uri_empty_path () =
  let u = parse "test://node/" in
  Alcotest.(check string) "explicit root" "/" u.Vuri.path;
  let u2 = parse "test://node" in
  Alcotest.(check string) "implied root" "/" u2.Vuri.path

let test_uri_invalid () =
  List.iter
    (fun s ->
      match Vuri.parse s with
      | Error e ->
        Alcotest.(check bool) "invalid-arg code" true
          (e.Verror.code = Verror.Invalid_arg)
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      ""; "noscheme"; "qemu:/missing-slashes"; "qemu+://host/"; "+tls://host/";
      "qemu://host:notaport/"; "qemu://host:0/"; "qemu://host:70000/";
      "qemu://@host/"; "qemu://host/?novalue"; "1bad://host/";
    ]

let test_uri_format_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Vuri.to_string (parse s)))
    [
      "qemu:///system";
      "xen+tls://admin@node07:16514/sys?daemon=d2";
      "esx://root@esx01/?password=x";
      "test:///default";
    ]

let gen_uri =
  QCheck.Gen.(
    let name = oneofl [ "qemu"; "xen"; "test"; "lxc"; "esx" ] in
    let* scheme = name in
    let* transport = opt (oneofl [ "tls"; "tcp"; "unix" ]) in
    let* host = opt (oneofl [ "node1"; "node2.example"; "h-3" ]) in
    let* user = if host = None then return None else opt (oneofl [ "root"; "admin" ]) in
    let* port =
      if host = None then return None else opt (int_range 1 65535)
    in
    let* path = oneofl [ "/"; "/system"; "/a/b" ] in
    let* params =
      list_size (int_bound 2)
        (pair (oneofl [ "k1"; "k2"; "k3" ]) (oneofl [ "v1"; "v2" ]))
    in
    let params = List.sort_uniq (fun (a, _) (b, _) -> compare a b) params in
    return (Vuri.make ?transport ?user ?host ?port ~path ~params scheme))

let prop_uri_roundtrip =
  qcheck_case "to_string/parse roundtrip" (QCheck.make gen_uri) (fun u ->
      match Vuri.parse (Vuri.to_string u) with
      | Ok u' -> u = u'
      | Error _ -> false)

(* --- Capabilities ------------------------------------------------------- *)

let sample_caps =
  Capabilities.
    {
      driver_name = "qemu";
      virt_kind = "full-virt";
      stateful = true;
      guest_os_kinds = [ Vmm.Vm_config.Hvm ];
      features = [ Feat_define; Feat_start; Feat_migrate_live ];
      host =
        {
          host_name = "node01";
          host_memory_kib = 16 * 1024 * 1024;
          host_cpus = 8;
          host_mhz = 2600;
          host_arch = "x86_64";
        };
    }

let test_capabilities_roundtrip () =
  let xml = Capabilities.to_xml sample_caps in
  let caps = sok (Capabilities.of_xml xml) in
  Alcotest.(check bool) "identical" true (caps = sample_caps)

let test_capabilities_supports () =
  Alcotest.(check bool) "has migrate" true
    (Capabilities.supports sample_caps Capabilities.Feat_migrate_live);
  Alcotest.(check bool) "lacks freeze" false
    (Capabilities.supports sample_caps Capabilities.Feat_freeze)

let test_capabilities_bad_xml () =
  List.iter
    (fun xml ->
      match Capabilities.of_xml xml with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" xml)
    [ "<capabilities/>"; "not xml"; "<capabilities><host/></capabilities>" ]

(* --- Events ------------------------------------------------------------- *)

let test_event_subscription () =
  let bus = Events.create_bus () in
  let seen = ref [] in
  let sub = Events.subscribe bus (fun ev -> seen := ev :: !seen) in
  Events.emit bus ~domain_name:"vm" Events.Ev_started;
  Events.emit bus ~domain_name:"vm" Events.Ev_stopped;
  Alcotest.(check int) "two delivered" 2 (List.length !seen);
  Events.unsubscribe bus sub;
  Events.emit bus ~domain_name:"vm" Events.Ev_crashed;
  Alcotest.(check int) "none after unsubscribe" 2 (List.length !seen);
  Alcotest.(check int) "history keeps all" 3 (List.length (Events.history bus))

let test_event_multiple_subscribers () =
  let bus = Events.create_bus () in
  let a = ref 0 and b = ref 0 in
  let _ = Events.subscribe bus (fun _ -> incr a) in
  let _ = Events.subscribe bus (fun _ -> incr b) in
  Events.emit bus ~domain_name:"x" Events.Ev_defined;
  Alcotest.(check (pair int int)) "both saw it" (1, 1) (!a, !b);
  Alcotest.(check int) "count" 2 (Events.subscriber_count bus)

let test_event_lifecycle_codes () =
  let all =
    Events.
      [
        Ev_defined; Ev_undefined; Ev_started; Ev_suspended; Ev_resumed; Ev_shutdown;
        Ev_stopped; Ev_crashed; Ev_migrated;
      ]
  in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "code roundtrip" true
        (Events.lifecycle_of_int (Events.lifecycle_to_int ev) = Ok ev))
    all;
  match Events.lifecycle_of_int 99 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus lifecycle accepted"

(* --- Net_backend -------------------------------------------------------- *)

let test_net_default_network () =
  let b = Net_backend.create () in
  let info = vok (Net_backend.lookup b "default") in
  Alcotest.(check bool) "active" true info.Net_backend.active;
  Alcotest.(check bool) "autostart" true info.Net_backend.autostart;
  Alcotest.(check string) "bridge" "virbr0" info.Net_backend.bridge

let test_net_lifecycle () =
  let b = Net_backend.create () in
  let _ = vok (Net_backend.define b ~name:"isolated" ~bridge:"virbr1" ~ip_range:"10.0.0.0/24") in
  expect_verr Verror.Dup_name
    (Net_backend.define b ~name:"isolated" ~bridge:"x" ~ip_range:"10.0.1.0/24");
  vok (Net_backend.start b "isolated");
  expect_verr Verror.Operation_invalid (Net_backend.start b "isolated");
  vok (Net_backend.connect_iface b "isolated");
  expect_verr Verror.Operation_invalid (Net_backend.stop b "isolated");
  Net_backend.disconnect_iface b "isolated";
  vok (Net_backend.stop b "isolated");
  vok (Net_backend.undefine b "isolated");
  expect_verr Verror.No_network (Net_backend.lookup b "isolated")

let test_net_cidr_validation () =
  let b = Net_backend.create () in
  List.iter
    (fun cidr ->
      expect_verr Verror.Invalid_arg
        (Net_backend.define b ~name:(fresh_name "net") ~bridge:"br" ~ip_range:cidr))
    [ ""; "10.0.0.0"; "10.0.0.0/33"; "300.0.0.1/24"; "a.b.c.d/8"; "10.0.0/24" ]

let test_net_iface_on_inactive_refused () =
  let b = Net_backend.create () in
  let _ = vok (Net_backend.define b ~name:"down" ~bridge:"b" ~ip_range:"10.1.0.0/16") in
  expect_verr Verror.Operation_invalid (Net_backend.connect_iface b "down")

(* --- Storage_backend ---------------------------------------------------- *)

let test_storage_default_pool () =
  let b = Storage_backend.create () in
  let info = vok (Storage_backend.lookup_pool b "default") in
  Alcotest.(check bool) "active" true info.Storage_backend.pool_active;
  Alcotest.(check int) "empty" 0 info.Storage_backend.volume_count

let test_storage_volume_lifecycle () =
  let b = Storage_backend.create () in
  let vol =
    vok
      (Storage_backend.create_volume b ~pool:"default" ~name:"a.img"
         ~capacity_b:1024 ~format:"qcow2")
  in
  Alcotest.(check string) "key path" "/var/lib/ovirt/images/a.img"
    vol.Storage_backend.vol_key;
  let found = vok (Storage_backend.volume_by_path b vol.Storage_backend.vol_key) in
  Alcotest.(check string) "resolved by path" "a.img" found.Storage_backend.vol_name;
  expect_verr Verror.Dup_name
    (Storage_backend.create_volume b ~pool:"default" ~name:"a.img" ~capacity_b:1
       ~format:"raw");
  vok (Storage_backend.delete_volume b ~pool:"default" ~name:"a.img");
  expect_verr Verror.No_storage_vol
    (Storage_backend.lookup_volume b ~pool:"default" ~name:"a.img")

let test_storage_capacity_budget () =
  let b = Storage_backend.create () in
  let _ =
    vok
      (Storage_backend.define_pool b ~name:"small" ~target_path:"/small"
         ~capacity_b:1000)
  in
  vok (Storage_backend.start_pool b "small");
  let _ =
    vok
      (Storage_backend.create_volume b ~pool:"small" ~name:"v1" ~capacity_b:800
         ~format:"raw")
  in
  expect_verr Verror.Resource_exhausted
    (Storage_backend.create_volume b ~pool:"small" ~name:"v2" ~capacity_b:300
       ~format:"raw");
  vok (Storage_backend.delete_volume b ~pool:"small" ~name:"v1");
  let info = vok (Storage_backend.lookup_pool b "small") in
  Alcotest.(check int) "allocation returns" 0 info.Storage_backend.allocation_b

let test_storage_pool_guards () =
  let b = Storage_backend.create () in
  expect_verr Verror.Invalid_arg
    (Storage_backend.define_pool b ~name:"bad" ~target_path:"relative" ~capacity_b:10);
  let _ = vok (Storage_backend.define_pool b ~name:"p" ~target_path:"/p" ~capacity_b:10) in
  (* inactive pool refuses volume creation *)
  expect_verr Verror.Operation_invalid
    (Storage_backend.create_volume b ~pool:"p" ~name:"v" ~capacity_b:1 ~format:"raw");
  vok (Storage_backend.start_pool b "p");
  let _ = vok (Storage_backend.create_volume b ~pool:"p" ~name:"v" ~capacity_b:1 ~format:"raw") in
  vok (Storage_backend.stop_pool b "p");
  (* non-empty pool refuses undefine *)
  expect_verr Verror.Operation_invalid (Storage_backend.undefine_pool b "p")

(* --- Driver registry ---------------------------------------------------- *)

let test_registry_selection_order () =
  (* Probes are walked in registration order; re-registering replaces. *)
  Ovirt.initialize ();
  let names = Driver.registered () in
  Alcotest.(check bool) "remote registered last" true
    (match List.rev names with "remote" :: _ -> true | _ -> false);
  Alcotest.(check bool) "test driver present" true (List.mem "test" names)

let test_registry_no_connect () =
  Ovirt.initialize ();
  match Ovirt.Connect.open_uri "vbox:///session" with
  | Error e ->
    Alcotest.(check bool) "no_connect" true (e.Verror.code = Verror.No_connect)
  | Ok _ -> Alcotest.fail "unknown scheme connected"

let test_registry_reregister_keeps_position () =
  (* Replacement is in place: a driver that re-registers (e.g. with a new
     probe) must not migrate to the back of the list, where it could fall
     behind a catch-all. *)
  Ovirt.initialize ();
  let fake name =
    Driver.
      {
        reg_name = name;
        probe = (fun _ -> false);
        open_conn =
          (fun _ -> Verror.error Verror.Internal_error "fake driver %s" name);
      }
  in
  Driver.register (fake "zz-a");
  Driver.register (fake "zz-b");
  Driver.register (fake "zz-c");
  let index name =
    let rec go i = function
      | [] -> Alcotest.fail (name ^ " not registered")
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 (Driver.registered ())
  in
  let before = (index "zz-a", index "zz-b", index "zz-c") in
  Driver.register (fake "zz-b");
  let after = (index "zz-a", index "zz-b", index "zz-c") in
  Alcotest.(check bool) "re-registration keeps position" true (before = after);
  Alcotest.(check int) "no duplicate entry" 3
    (List.length
       (List.filter
          (fun n -> List.mem n [ "zz-a"; "zz-b"; "zz-c" ])
          (Driver.registered ())))

let test_closed_connection_rejected () =
  let conn = fresh_test_conn () in
  Ovirt.Connect.close conn;
  Ovirt.Connect.close conn (* idempotent *);
  expect_verr Verror.Invalid_conn (Ovirt.Connect.list_domains conn);
  expect_verr Verror.Invalid_conn (Ovirt.Connect.capabilities conn)

let () =
  Alcotest.run "core"
    [
      ( "verror",
        [
          quick "codes stable on the wire" test_error_codes_stable;
          quick "formatting" test_error_formatting;
        ] );
      ( "uri",
        [
          quick "basic" test_uri_basic;
          quick "all components" test_uri_full;
          quick "empty path" test_uri_empty_path;
          quick "invalid rejected" test_uri_invalid;
          quick "format roundtrip" test_uri_format_roundtrip;
          prop_uri_roundtrip;
        ] );
      ( "capabilities",
        [
          quick "xml roundtrip" test_capabilities_roundtrip;
          quick "supports" test_capabilities_supports;
          quick "bad xml rejected" test_capabilities_bad_xml;
        ] );
      ( "events",
        [
          quick "subscribe/unsubscribe/history" test_event_subscription;
          quick "multiple subscribers" test_event_multiple_subscribers;
          quick "lifecycle wire codes" test_event_lifecycle_codes;
        ] );
      ( "net backend",
        [
          quick "default network" test_net_default_network;
          quick "lifecycle" test_net_lifecycle;
          quick "cidr validation" test_net_cidr_validation;
          quick "iface on inactive refused" test_net_iface_on_inactive_refused;
        ] );
      ( "storage backend",
        [
          quick "default pool" test_storage_default_pool;
          quick "volume lifecycle" test_storage_volume_lifecycle;
          quick "capacity budget" test_storage_capacity_budget;
          quick "pool guards" test_storage_pool_guards;
        ] );
      ( "registry",
        [
          quick "selection order" test_registry_selection_order;
          quick "unknown scheme refused" test_registry_no_connect;
          quick "re-registration keeps position" test_registry_reregister_keeps_position;
          quick "closed connection rejected" test_closed_connection_rejected;
        ] );
    ]
