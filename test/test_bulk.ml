(* Bulk/batched RPC and event-invalidated client caching: v1.3 protocol
   numbering, batch framing, the cache fill protocol (including the
   event-races-reply window), remote/direct parity of the bulk listing,
   degradation against daemons pinned at protocol minor 2, and the
   path-indexed volume lookup. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Vm_state = Vmm.Vm_state
module Transport = Ovnet.Transport
module Rp = Protocol.Remote_protocol
module Cache = Drv_remote.Cache

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "bulkd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

(* A daemon answering at protocol minor 2: behaves exactly like a build
   that predates the bulk/batch procedures. *)
let v12_config = { quiet_config with Daemon_config.proto_minor = 2 }

let remote_uri ?(transport = "unix") ?(params = "") ~daemon node =
  Printf.sprintf "test+%s://%s/?daemon=%s%s" transport node daemon params

(* --- protocol surface ----------------------------------------------------- *)

let test_v13_numbers_stable () =
  Alcotest.(check int) "build minor" 7 Rp.minor;
  Alcotest.(check int) "proto_minor is 45" 45 (Rp.proc_to_int Rp.Proc_proto_minor);
  Alcotest.(check int) "dom_list_all is 46" 46 (Rp.proc_to_int Rp.Proc_dom_list_all);
  Alcotest.(check int) "call_batch is 47" 47 (Rp.proc_to_int Rp.Proc_call_batch);
  Alcotest.(check int) "vol_lookup is 48" 48 (Rp.proc_to_int Rp.Proc_vol_lookup);
  List.iter
    (fun p -> Alcotest.(check int) "new procs need minor 3" 3 (Rp.proc_min_minor p))
    [ Rp.Proc_proto_minor; Rp.Proc_dom_list_all; Rp.Proc_call_batch; Rp.Proc_vol_lookup ];
  Alcotest.(check int) "save needs minor 1" 1 (Rp.proc_min_minor Rp.Proc_dom_save);
  Alcotest.(check int) "autostart needs minor 2" 2
    (Rp.proc_min_minor Rp.Proc_dom_get_autostart);
  Alcotest.(check int) "open is primordial" 0 (Rp.proc_min_minor Rp.Proc_open);
  (* A batch frame must never be blindly re-issued; the listing is a pure
     read. *)
  Alcotest.(check bool) "batch not idempotent" false
    (Rp.is_idempotent Rp.Proc_call_batch);
  Alcotest.(check bool) "bulk listing idempotent" true
    (Rp.is_idempotent Rp.Proc_dom_list_all)

let test_domain_record_roundtrip () =
  let mk name autostart state =
    Driver.
      {
        rec_ref =
          { dom_name = name; dom_uuid = Vmm.Uuid.generate (); dom_id = Some 3 };
        rec_info =
          {
            di_state = state;
            di_max_mem_kib = 512 * 1024;
            di_memory_kib = 256 * 1024;
            di_vcpus = 2;
            di_cpu_time_ns = 1234567L;
          };
        rec_autostart = autostart;
      }
  in
  let records =
    [
      mk "a" (Some true) Vm_state.Running;
      mk "b" (Some false) Vm_state.Shutoff;
      mk "c" None Vm_state.Paused;
    ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Rp.dec_domain_record_list (Rp.enc_domain_record_list records) = records);
  Alcotest.(check bool) "empty" true
    (Rp.dec_domain_record_list (Rp.enc_domain_record_list []) = [])

let test_batch_codec_roundtrip () =
  let calls = [ (38, "payload"); (12, ""); (46, String.make 300 'x') ] in
  Alcotest.(check bool) "calls" true (Rp.dec_batch_call (Rp.enc_batch_call calls) = calls);
  let replies =
    [ (true, "ok-body"); (false, Rp.enc_error (Verror.make Verror.No_domain "gone")) ]
  in
  Alcotest.(check bool) "replies" true
    (Rp.dec_batch_reply (Rp.enc_batch_reply replies) = replies);
  Alcotest.(check int) "int body" 3 (Rp.dec_int_body (Rp.enc_int_body 3))

(* --- cache fill protocol -------------------------------------------------- *)

let test_cache_hit_miss_invalidate () =
  let c = Cache.create () in
  Alcotest.(check bool) "cold miss" true (Cache.find c "vm" ~now:0. = None);
  let fill = Cache.begin_fill c in
  Alcotest.(check bool) "install accepted" true (Cache.install c fill "vm" 42 ~now:0.);
  Alcotest.(check bool) "hit" true (Cache.find c "vm" ~now:0. = Some 42);
  Cache.invalidate c "vm";
  Alcotest.(check bool) "invalidated" true (Cache.find c "vm" ~now:0. = None);
  Alcotest.(check int) "one hit counted" 1 (Cache.hits c)

let test_cache_event_before_reply_drops_fill () =
  let c = Cache.create () in
  (* The race this cache exists to win: the read was issued, the event
     arrived, then the (stale) reply came back.  Installing it would keep
     the stale value forever. *)
  let fill = Cache.begin_fill c in
  Cache.invalidate c "vm";
  Alcotest.(check bool) "stale reply refused" false
    (Cache.install c fill "vm" 1 ~now:0.);
  Alcotest.(check bool) "nothing cached" true (Cache.find c "vm" ~now:0. = None);
  (* The same token still installs rows the event did not touch: a bulk
     reply degrades per name, not wholesale. *)
  Alcotest.(check bool) "unraced row installs" true
    (Cache.install c fill "other" 2 ~now:0.);
  (* A fill begun after the invalidation is clean. *)
  let fill2 = Cache.begin_fill c in
  Alcotest.(check bool) "fresh fill installs" true (Cache.install c fill2 "vm" 3 ~now:0.);
  Alcotest.(check bool) "fresh value served" true (Cache.find c "vm" ~now:0. = Some 3)

let test_cache_clear_voids_epoch () =
  let c = Cache.create () in
  let fill = Cache.begin_fill c in
  Alcotest.(check bool) "installs before clear" true (Cache.install c fill "a" 1 ~now:0.);
  let e0 = Cache.epoch c in
  Cache.clear c;
  Alcotest.(check int) "epoch bumped" (e0 + 1) (Cache.epoch c);
  Alcotest.(check int) "emptied" 0 (Cache.size c);
  Alcotest.(check bool) "pre-clear fill void" false (Cache.install c fill "b" 2 ~now:0.)

let test_cache_ttl () =
  let c = Cache.create ~ttl:1.0 () in
  let fill = Cache.begin_fill c in
  ignore (Cache.install c fill "vm" 9 ~now:100.);
  Alcotest.(check bool) "fresh within ttl" true (Cache.find c "vm" ~now:100.9 = Some 9);
  Alcotest.(check bool) "expired after ttl" true (Cache.find c "vm" ~now:101.1 = None)

let test_cache_uuid_index () =
  let c = Cache.create () in
  let fill = Cache.begin_fill c in
  ignore (Cache.install c fill "vm" ~uuid:"u-1" 7 ~now:0.);
  Alcotest.(check bool) "by uuid" true (Cache.find_by_uuid c "u-1" ~now:0. = Some 7);
  Cache.invalidate c "vm";
  Alcotest.(check bool) "uuid dropped with name" true
    (Cache.find_by_uuid c "u-1" ~now:0. = None)

(* --- bulk listing: local and remote -------------------------------------- *)

let sort_records records =
  List.sort
    (fun a b -> compare a.Driver.rec_ref.Driver.dom_name b.Driver.rec_ref.Driver.dom_name)
    records

let record_names records =
  List.map (fun r -> r.Driver.rec_ref.Driver.dom_name) (sort_records records)

(* A node with two running and one merely defined domain. *)
let populate conn =
  let running1 = fresh_name "bulk-r1" and running2 = fresh_name "bulk-r2" in
  let defined = fresh_name "bulk-d" in
  let _ = define_and_start conn ~virt_type:"test" ~name:running1 () in
  let _ = define_and_start conn ~virt_type:"test" ~name:running2 () in
  let cfg = Vmm.Vm_config.make ~memory_kib:(8 * 1024) defined in
  let dom = vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
  vok (Domain.set_autostart dom true);
  ([ running1; running2 ], [ defined ])

let test_list_all_matches_per_op () =
  let conn = fresh_test_conn () in
  let running, defined = populate conn in
  (* Every fresh test node seeds a running domain named "test". *)
  let running = "test" :: running in
  let records = vok (Connect.list_all_domains conn) in
  Alcotest.(check (list string)) "names"
    (List.sort compare (running @ defined))
    (record_names records);
  List.iter
    (fun r ->
      let name = r.Driver.rec_ref.Driver.dom_name in
      let dom = vok (Domain.lookup_by_name conn name) in
      Alcotest.(check bool) (name ^ " info agrees") true
        (vok (Domain.get_info dom) = r.Driver.rec_info);
      Alcotest.(check bool) (name ^ " autostart agrees") true
        (Some (vok (Domain.get_autostart dom)) = r.Driver.rec_autostart);
      Alcotest.(check bool) (name ^ " state sensible") true
        (if List.mem name running then r.Driver.rec_info.Driver.di_state = Vm_state.Running
         else r.Driver.rec_info.Driver.di_state = Vm_state.Shutoff))
    records;
  Connect.close conn

let test_remote_bulk_matches_direct () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "bulknode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let remote = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let _ = populate direct in
      let drecs = sort_records (vok (Connect.list_all_domains direct)) in
      let rrecs = sort_records (vok (Connect.list_all_domains remote)) in
      Alcotest.(check bool) "records agree over the wire" true (drecs = rrecs);
      Connect.close remote;
      Connect.close direct)

let test_v12_daemon_degrades_identically () =
  (* The acceptance criterion: a v1.3 client against a v1.2 daemon falls
     back to per-operation calls with identical results. *)
  with_daemon (fun d13 _ ->
      with_daemon ~config:v12_config (fun d12 _ ->
          let node = fresh_name "negnode" in
          let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
          let _ = populate direct in
          let via daemon =
            let conn = vok (Connect.open_uri (remote_uri ~daemon node)) in
            let records = sort_records (vok (Connect.list_all_domains conn)) in
            Connect.close conn;
            records
          in
          let new_daemon = via d13 and old_daemon = via d12 in
          Alcotest.(check bool) "old daemon serves identical records" true
            (new_daemon = old_daemon);
          Alcotest.(check bool) "and matches direct" true
            (new_daemon = sort_records (vok (Connect.list_all_domains direct)));
          Connect.close direct))

let test_pipelined_fallback_over_tls () =
  (* Regression: the emulated listing pipelines its sub-calls, which
     interleaves requests and replies on the wire.  TLS records are
     sequence-checked per direction, so this used to corrupt the stream
     (a single shared counter assumed strict ping-pong) — the listing
     came back empty or the connection died.  Repeat a few times: the
     original failure was a scheduling race. *)
  with_daemon ~config:v12_config (fun daemon _ ->
      let node = fresh_name "tlsnode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      (* Enough defined domains to make the pipelined lookup burst wide. *)
      for i = 1 to 8 do
        let cfg = Vmm.Vm_config.make (Printf.sprintf "tlsvm%d" i) in
        ignore
          (vok (Domain.define_xml direct (Vmm.Domxml.to_xml ~virt_type:"test" cfg)))
      done;
      let expected = sort_records (vok (Connect.list_all_domains direct)) in
      for _ = 1 to 5 do
        let conn =
          vok (Connect.open_uri (remote_uri ~transport:"tls" ~daemon node))
        in
        let records = sort_records (vok (Connect.list_all_domains conn)) in
        Alcotest.(check bool) "tls pipelined listing matches direct" true
          (records = expected);
        Connect.close conn
      done;
      Connect.close direct)

(* --- batch execution on the daemon ---------------------------------------- *)

let raw_client daemon =
  match
    Rpc_client.connect ~address:(daemon ^ "-sock") ~kind:Transport.Unix_sock
      ~program:Rp.program ~version:Rp.version ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)

let raw_call client proc body =
  Rpc_client.call client ~procedure:(Rp.proc_to_int proc) ~body ()

let test_batch_error_isolation () =
  with_daemon (fun daemon _ ->
      let client = raw_client daemon in
      let node = fresh_name "batchnode" in
      vok
        (Result.map Rp.dec_unit_body
           (raw_call client Rp.Proc_open
              (Rp.enc_string_body (Printf.sprintf "test://%s/" node))));
      let batch =
        Rp.enc_batch_call
          [
            (Rp.proc_to_int Rp.Proc_echo, "hello");
            (Rp.proc_to_int Rp.Proc_dom_get_info, Rp.enc_string_body "no-such-vm");
            (9999, "");
            (Rp.proc_to_int Rp.Proc_list_domains, Rp.enc_unit_body);
          ]
      in
      let replies = Rp.dec_batch_reply (vok (raw_call client Rp.Proc_call_batch batch)) in
      (match replies with
      | [ (ok1, b1); (ok2, b2); (ok3, b3); (ok4, b4) ] ->
        Alcotest.(check bool) "echo succeeded" true ok1;
        Alcotest.(check string) "echo body" "hello" b1;
        Alcotest.(check bool) "missing domain isolated" false ok2;
        Alcotest.(check bool) "as no_domain" true
          ((Rp.dec_error b2).Verror.code = Verror.No_domain);
        Alcotest.(check bool) "unknown proc isolated" false ok3;
        Alcotest.(check bool) "as rpc_failure" true
          ((Rp.dec_error b3).Verror.code = Verror.Rpc_failure);
        Alcotest.(check bool) "sibling after failures succeeded" true ok4;
        Alcotest.(check int) "and decoded" 1
          (List.length (Rp.dec_domain_ref_list b4))
      | _ -> Alcotest.failf "expected 4 sub-replies, got %d" (List.length replies));
      (* A batch must not smuggle a batch: the recursion is refused. *)
      let nested =
        Rp.enc_batch_call [ (Rp.proc_to_int Rp.Proc_call_batch, Rp.enc_batch_call []) ]
      in
      (match Rp.dec_batch_reply (vok (raw_call client Rp.Proc_call_batch nested)) with
      | [ (false, body) ] ->
        Alcotest.(check bool) "nested refused" true
          ((Rp.dec_error body).Verror.code = Verror.Rpc_failure)
      | _ -> Alcotest.fail "nested batch not isolated");
      Rpc_client.close client)

let test_v12_daemon_rejects_new_procs () =
  with_daemon ~config:v12_config (fun daemon _ ->
      let client = raw_client daemon in
      vok
        (Result.map Rp.dec_unit_body
           (raw_call client Rp.Proc_open
              (Rp.enc_string_body (Printf.sprintf "test://%s/" (fresh_name "old")))));
      List.iter
        (fun proc ->
          match raw_call client proc Rp.enc_unit_body with
          | Ok _ -> Alcotest.failf "v1.2 daemon accepted proc %d" (Rp.proc_to_int proc)
          | Error e ->
            Alcotest.(check bool) "unknown procedure" true
              (e.Verror.code = Verror.Rpc_failure))
        [ Rp.Proc_proto_minor; Rp.Proc_dom_list_all; Rp.Proc_call_batch; Rp.Proc_vol_lookup ];
      (* The gated procedures must be indistinguishable from garbage
         numbers: same error text an out-of-range procedure gets. *)
      (match raw_call client Rp.Proc_dom_list_all Rp.enc_unit_body with
      | Error e ->
        Alcotest.(check string) "same wording as unknown"
          (Printf.sprintf "unknown remote procedure %d" (Rp.proc_to_int Rp.Proc_dom_list_all))
          e.Verror.message
      | Ok _ -> Alcotest.fail "accepted");
      Rpc_client.close client)

(* --- cache behaviour over a live connection ------------------------------- *)

let calls_of conn =
  match Drv_remote.conn_stats (vok (Connect.ops conn)) with
  | Some s -> s.Drv_remote.st_calls
  | None -> Alcotest.fail "not a remote connection"

let test_cache_serves_repeat_reads () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "cachenode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let name = fresh_name "vm" in
      let _ = define_and_start direct ~virt_type:"test" ~name () in
      let remote = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let dom = vok (Domain.lookup_by_name remote name) in
      let c0 = calls_of remote in
      let i1 = vok (Domain.get_info dom) in
      let c1 = calls_of remote in
      let i2 = vok (Domain.get_info dom) in
      let i3 = vok (Domain.get_info dom) in
      let c2 = calls_of remote in
      Alcotest.(check bool) "reads agree" true (i1 = i2 && i2 = i3);
      Alcotest.(check int) "first read hits the wire" 1 (c1 - c0);
      Alcotest.(check int) "repeats served locally" 0 (c2 - c1);
      (* The bulk listing primes all three caches: point reads after it
         cost nothing. *)
      let c3 = calls_of remote in
      let records = vok (Connect.list_all_domains remote) in
      let c4 = calls_of remote in
      List.iter
        (fun r ->
          let n = r.Driver.rec_ref.Driver.dom_name in
          let d = vok (Domain.lookup_by_name remote n) in
          ignore (vok (Domain.get_info d));
          ignore (vok (Domain.get_autostart d)))
        records;
      let c5 = calls_of remote in
      Alcotest.(check int) "one call for the listing" 1 (c4 - c3);
      Alcotest.(check int) "primed point reads are free" 0 (c5 - c4);
      (* XML is cached too, and a config change invalidates it. *)
      let x1 = vok (Domain.xml_desc dom) in
      let c6 = calls_of remote in
      let x2 = vok (Domain.xml_desc dom) in
      let c7 = calls_of remote in
      Alcotest.(check string) "xml repeat agrees" x1 x2;
      Alcotest.(check int) "first xml read hits the wire" 1 (c6 - c5);
      Alcotest.(check int) "xml repeat served locally" 0 (c7 - c6);
      let uuid = Domain.uuid dom in
      let cfg = Vmm.Vm_config.make ~uuid ~memory_kib:(32 * 1024) name in
      ignore
        (vok (Domain.define_xml remote (Vmm.Domxml.to_xml ~virt_type:"test" cfg)));
      let x3 = vok (Domain.xml_desc dom) in
      Alcotest.(check bool) "redefine invalidates cached xml" false (x1 = x3);
      Connect.close remote;
      Connect.close direct)

let test_event_invalidates_cache () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "evnode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let name = fresh_name "vm" in
      let ddom = define_and_start direct ~virt_type:"test" ~name () in
      let remote = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let rdom = vok (Domain.lookup_by_name remote name) in
      Alcotest.(check bool) "cached as running" true
        ((vok (Domain.get_info rdom)).Driver.di_state = Vm_state.Running);
      (* Mutate through the other path: only the pushed lifecycle event
         can tell the remote client its cache is stale. *)
      vok (Domain.suspend ddom);
      Alcotest.(check bool) "event refreshed the cached state" true
        (eventually (fun () ->
             (vok (Domain.get_info rdom)).Driver.di_state = Vm_state.Paused));
      Connect.close remote;
      Connect.close direct)

let test_eventless_ttl_freshness () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "ttlnode" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let name = fresh_name "vm" in
      let ddom = define_and_start direct ~virt_type:"test" ~name () in
      (* No event stream, generous TTL: the cache must mask the remote
         mutation — proof the hits really are served locally. *)
      let stale =
        vok (Connect.open_uri (remote_uri ~params:"&events=0&cache_ttl=600" ~daemon node))
      in
      let sdom = vok (Domain.lookup_by_name stale name) in
      Alcotest.(check bool) "primed" true
        ((vok (Domain.get_info sdom)).Driver.di_state = Vm_state.Running);
      (* Short TTL on a second connection: freshness decays by clock. *)
      let fresh =
        vok (Connect.open_uri (remote_uri ~params:"&events=0&cache_ttl=0.05" ~daemon node))
      in
      let fdom = vok (Domain.lookup_by_name fresh name) in
      Alcotest.(check bool) "also primed" true
        ((vok (Domain.get_info fdom)).Driver.di_state = Vm_state.Running);
      vok (Domain.suspend ddom);
      Alcotest.(check bool) "short ttl sees the change" true
        (eventually (fun () ->
             (vok (Domain.get_info fdom)).Driver.di_state = Vm_state.Paused));
      Alcotest.(check bool) "long ttl still serves the cached state" true
        ((vok (Domain.get_info sdom)).Driver.di_state = Vm_state.Running);
      Connect.close fresh;
      Connect.close stale;
      Connect.close direct)

let test_cache_disabled_by_param () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "nocache" in
      let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
      let name = fresh_name "vm" in
      let _ = define_and_start direct ~virt_type:"test" ~name () in
      let remote = vok (Connect.open_uri (remote_uri ~params:"&cache=0" ~daemon node)) in
      let dom = vok (Domain.lookup_by_name remote name) in
      let c0 = calls_of remote in
      ignore (vok (Domain.get_info dom));
      ignore (vok (Domain.get_info dom));
      Alcotest.(check int) "every read on the wire" 2 (calls_of remote - c0);
      Connect.close remote;
      Connect.close direct)

let test_reconnect_drops_cache () =
  let dname = fresh_name "bulkd" in
  let d1 = Daemon.start ~name:dname ~config:quiet_config () in
  let node = fresh_name "reconnode" in
  let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
  let name = fresh_name "vm" in
  let ddom = define_and_start direct ~virt_type:"test" ~name () in
  (* Event-less with an effectively infinite TTL: only a reconnect's
     epoch bump can evict what we cache now. *)
  let remote =
    vok
      (Connect.open_uri
         (remote_uri
            ~params:"&events=0&cache_ttl=600&reconnect=50&reconnect_delay=0.01&reconnect_max_delay=0.05"
            ~daemon:dname node))
  in
  let rdom = vok (Domain.lookup_by_name remote name) in
  Alcotest.(check bool) "cached running" true
    ((vok (Domain.get_info rdom)).Driver.di_state = Vm_state.Running);
  vok (Domain.suspend ddom);
  Alcotest.(check bool) "cache masks the change" true
    ((vok (Domain.get_info rdom)).Driver.di_state = Vm_state.Running);
  (* Bounce the daemon: the client's next call reconnects, and the
     reconnect must clear the cache — the masked suspend becomes
     visible. *)
  Daemon.stop d1;
  let d2 = Daemon.start ~name:dname ~config:quiet_config () in
  Alcotest.(check bool) "reconnected read is fresh" true
    (eventually ~timeout_s:5.0 (fun () ->
         match Domain.get_info rdom with
         | Ok info -> info.Driver.di_state = Vm_state.Paused
         | Error _ -> false));
  (match Drv_remote.conn_stats (vok (Connect.ops remote)) with
  | Some s ->
    Alcotest.(check bool) "a reconnect happened" true (s.Drv_remote.st_reconnects >= 1)
  | None -> Alcotest.fail "not a remote connection");
  Connect.close remote;
  Connect.close direct;
  Daemon.stop d2

(* --- path-indexed volume lookup ------------------------------------------- *)

let test_vol_by_path_native_and_emulated () =
  with_daemon (fun d13 _ ->
      with_daemon ~config:v12_config (fun d12 _ ->
          let node = fresh_name "volnode" in
          let direct = vok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
          let pool =
            vok
              (Ovirt.Storage.define_pool direct ~name:"bulkpool"
                 ~target_path:"/bulkpool" ~capacity_b:(1 lsl 30))
          in
          vok (Ovirt.Storage.start_pool pool);
          let vol =
            vok
              (Ovirt.Storage.create_volume pool ~name:"disk.img"
                 ~capacity_b:(1 lsl 20) ~format:"qcow2")
          in
          let path = vol.Ovirt.Storage_backend.vol_key in
          let via daemon =
            let conn = vok (Connect.open_uri (remote_uri ~daemon node)) in
            let c0 = calls_of conn in
            let found = vok (Ovirt.Storage.volume_by_path conn path) in
            let cost = calls_of conn - c0 in
            (match Ovirt.Storage.volume_by_path conn (path ^ "-nope") with
            | Error e ->
              Alcotest.(check bool) "miss is no_storage_vol" true
                (e.Verror.code = Verror.No_storage_vol)
            | Ok _ -> Alcotest.fail "bogus path resolved");
            Connect.close conn;
            (found, cost)
          in
          let found13, cost13 = via d13 in
          let found12, _ = via d12 in
          Alcotest.(check bool) "both daemons resolve the volume" true
            (found13 = vol && found12 = vol);
          Alcotest.(check int) "native lookup is one round trip" 1 cost13;
          Connect.close direct))

let () =
  Alcotest.run "bulk"
    [
      ( "protocol",
        [
          quick "v1.3 numbers stable" test_v13_numbers_stable;
          quick "domain record roundtrip" test_domain_record_roundtrip;
          quick "batch codec roundtrip" test_batch_codec_roundtrip;
        ] );
      ( "cache",
        [
          quick "hit, miss, invalidate" test_cache_hit_miss_invalidate;
          quick "event before reply drops fill" test_cache_event_before_reply_drops_fill;
          quick "clear voids epoch" test_cache_clear_voids_epoch;
          quick "ttl expiry" test_cache_ttl;
          quick "uuid index" test_cache_uuid_index;
        ] );
      ( "bulk listing",
        [
          quick "matches per-op locally" test_list_all_matches_per_op;
          quick "remote matches direct" test_remote_bulk_matches_direct;
          quick "v1.2 daemon degrades identically" test_v12_daemon_degrades_identically;
          quick "pipelined fallback over tls" test_pipelined_fallback_over_tls;
        ] );
      ( "batch",
        [
          quick "error isolation" test_batch_error_isolation;
          quick "v1.2 daemon rejects new procs" test_v12_daemon_rejects_new_procs;
        ] );
      ( "cache over rpc",
        [
          quick "repeat reads served locally" test_cache_serves_repeat_reads;
          quick "event invalidates" test_event_invalidates_cache;
          quick "eventless ttl freshness" test_eventless_ttl_freshness;
          quick "cache=0 disables" test_cache_disabled_by_param;
          quick "reconnect drops cache" test_reconnect_drops_cache;
        ] );
      ( "storage",
        [ quick "vol_by_path native and emulated" test_vol_by_path_native_and_emulated ]
      );
    ]
