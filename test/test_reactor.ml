(* Readiness-driven reactor: core loop semantics (ordering, edge/level
   triggering, wakeup-during-dispatch, deadline wheel), buffer pool
   accounting, and the daemon's [io_model=reactor] front end — including
   byte-stream reassembly the threaded reader never needed, admin
   authorization, fault-injection parity, and an idle-connection mass. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Admin = Ovirt.Admin_client
module Reactor = Ovirt.Reactor
module Bufpool = Ovirt.Bufpool
module Chan = Ovnet.Chan
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Faults = Ovnet.Faults
module Rpc_packet = Ovrpc.Rpc_packet
module Rp = Protocol.Remote_protocol

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let reactor_config =
  { quiet_config with Daemon_config.io_model = Daemon_config.Io_reactor }

let threaded_config =
  { quiet_config with Daemon_config.io_model = Daemon_config.Io_threaded }

let with_daemon ~config f =
  let name = fresh_name "reactd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

let remote_uri ?(transport = "unix") ~daemon node =
  Printf.sprintf "test+%s://%s/?daemon=%s" transport node daemon

let with_reactor f =
  let r = Reactor.create ~name:(fresh_name "test-reactor") () in
  Fun.protect ~finally:(fun () -> Reactor.stop r) (fun () -> f r)

(* --- core loop ----------------------------------------------------------- *)

let test_readiness_ordering () =
  with_reactor (fun r ->
      let a = Chan.create () and b = Chan.create () in
      let order = ref [] in
      let record tag chan () =
        ignore (Chan.try_recv chan);
        order := tag :: !order
      in
      ignore (Reactor.watch_chan r a ~mode:Reactor.Edge (record "a" a));
      ignore (Reactor.watch_chan r b ~mode:Reactor.Edge (record "b" b));
      (* Registration reports no readiness, so these sends produce the
         first hook events; the ready list is FIFO. *)
      Chan.send a "first";
      Chan.send b "second";
      Alcotest.(check bool) "both dispatched" true
        (eventually (fun () -> List.length !order = 2));
      Alcotest.(check (list string)) "fifo order" [ "a"; "b" ] (List.rev !order))

let test_edge_coalesces_level_drains () =
  (* Three messages queued before the watch exists produce exactly one
     readiness event (the kick).  An edge watch that reads one message
     per callback stalls with two stuck; a level watch re-queues itself
     until the channel is dry. *)
  let run mode =
    let r = Reactor.create ~name:(fresh_name "test-reactor") () in
    Fun.protect
      ~finally:(fun () -> Reactor.stop r)
      (fun () ->
        let c = Chan.create () in
        Chan.send c "1";
        Chan.send c "2";
        Chan.send c "3";
        let reads = ref 0 in
        let w =
          Reactor.watch_chan r c ~mode (fun () ->
              match Chan.try_recv c with
              | Some _ -> incr reads
              | None -> ())
        in
        Reactor.kick r w;
        (mode, reads, c))
  in
  let _, edge_reads, edge_chan = run Reactor.Edge in
  let _, level_reads, _ = run Reactor.Level in
  Alcotest.(check bool) "level watch drains all three" true
    (eventually (fun () -> !level_reads = 3));
  Thread.delay 0.1;
  Alcotest.(check int) "edge watch ran once for the coalesced kick" 1 !edge_reads;
  Alcotest.(check int) "edge leftovers still queued" 2 (Chan.pending edge_chan)

let test_wakeup_during_dispatch () =
  with_reactor (fun r ->
      let a = Chan.create () and b = Chan.create () in
      let in_a = ref false and release = ref false and b_ran = ref false in
      ignore
        (Reactor.watch_chan r a ~mode:Reactor.Edge (fun () ->
             ignore (Chan.try_recv a);
             in_a := true;
             while not !release do
               Thread.delay 0.002
             done));
      ignore
        (Reactor.watch_chan r b ~mode:Reactor.Edge (fun () ->
             ignore (Chan.try_recv b);
             b_ran := true));
      Chan.send a "block";
      Alcotest.(check bool) "reactor entered a's callback" true
        (eventually (fun () -> !in_a));
      (* The loop is busy dispatching, not parked in select: readiness
         arriving now must be queued, not lost. *)
      Chan.send b "poke";
      release := true;
      Alcotest.(check bool) "b dispatched after a released the loop" true
        (eventually (fun () -> !b_ran)))

let test_timer_order_and_fire () =
  with_reactor (fun r ->
      let fired = ref [] in
      ignore (Reactor.after r 0.08 (fun () -> fired := "slow" :: !fired));
      ignore (Reactor.after r 0.02 (fun () -> fired := "fast" :: !fired));
      Alcotest.(check bool) "both fired" true
        (eventually (fun () -> List.length !fired = 2));
      Alcotest.(check (list string)) "earliest deadline first" [ "fast"; "slow" ]
        (List.rev !fired))

let test_timer_cancel () =
  with_reactor (fun r ->
      let fired = ref false in
      let t = Reactor.after r 0.05 (fun () -> fired := true) in
      Alcotest.(check bool) "cancel disarms" true (Reactor.cancel r t);
      Alcotest.(check bool) "double cancel reports dead" false (Reactor.cancel r t);
      Thread.delay 0.12;
      Alcotest.(check bool) "cancelled timer never fires" false !fired;
      let done_ = ref false in
      let t2 = Reactor.after r 0.01 (fun () -> done_ := true) in
      Alcotest.(check bool) "fires" true (eventually (fun () -> !done_));
      Alcotest.(check bool) "cancel after fire reports dead" false
        (Reactor.cancel r t2))

let test_unwatch_stops_callbacks () =
  with_reactor (fun r ->
      let c = Chan.create () in
      let ran = ref false in
      let w = Reactor.watch_chan r c ~mode:Reactor.Level (fun () -> ran := true) in
      Reactor.unwatch r w;
      Chan.send c "ignored";
      Thread.delay 0.08;
      Alcotest.(check bool) "unwatched channel never dispatches" false !ran)

let test_stop_from_callback () =
  let r = Reactor.create ~name:(fresh_name "test-reactor") () in
  let c = Chan.create () in
  let w =
    Reactor.watch_chan r c ~mode:Reactor.Edge (fun () ->
        ignore (Chan.try_recv c);
        Reactor.stop r)
  in
  ignore w;
  Chan.send c "die";
  (* The callback's own stop skips the self-join; this one joins the
     exiting loop thread and must return promptly. *)
  Reactor.stop r;
  Reactor.stop r

let test_stats_counting () =
  with_reactor (fun r ->
      let c = Chan.create () in
      let w = Reactor.watch_chan r c ~mode:Reactor.Edge (fun () -> ignore (Chan.try_recv c)) in
      Chan.send c "x";
      Alcotest.(check bool) "dispatch counted" true
        (eventually (fun () -> (Reactor.stats r).Reactor.dispatches >= 1));
      Alcotest.(check int) "one active watch" 1 (Reactor.stats r).Reactor.watches_active;
      Reactor.unwatch r w;
      Alcotest.(check int) "none after unwatch" 0 (Reactor.stats r).Reactor.watches_active)

(* --- buffer pool --------------------------------------------------------- *)

let test_bufpool_reuse () =
  let p = Bufpool.create ~buf_size:64 ~max_pooled:2 in
  let b1 = Bufpool.take p in
  Alcotest.(check int) "sized" 64 (Bytes.length b1);
  Bufpool.give p b1;
  let b2 = Bufpool.take p in
  Alcotest.(check bool) "pooled buffer reused" true (b1 == b2);
  let s = Bufpool.stats p in
  Alcotest.(check int) "one miss" 1 s.Bufpool.s_misses;
  Alcotest.(check int) "one hit" 1 s.Bufpool.s_hits;
  Alcotest.(check int) "one return" 1 s.Bufpool.s_returns

let test_bufpool_drops () =
  let p = Bufpool.create ~buf_size:64 ~max_pooled:1 in
  (* Grown buffers never re-pool... *)
  Bufpool.give p (Bytes.create 128);
  Alcotest.(check int) "wrong size dropped" 1 (Bufpool.stats p).Bufpool.s_drops;
  Alcotest.(check int) "nothing pooled" 0 (Bufpool.stats p).Bufpool.s_available;
  (* ...and the pool never holds more than max_pooled. *)
  let b1 = Bufpool.take p and b2 = Bufpool.take p in
  Bufpool.give p b1;
  Bufpool.give p b2;
  let s = Bufpool.stats p in
  Alcotest.(check int) "capped at one" 1 s.Bufpool.s_available;
  Alcotest.(check int) "overflow dropped" 2 s.Bufpool.s_drops

(* --- daemon front end ---------------------------------------------------- *)

let test_reactor_daemon_all_transports () =
  with_daemon ~config:reactor_config (fun name daemon ->
      Alcotest.(check bool) "io model" true
        (Daemon.io_model daemon = Daemon_config.Io_reactor);
      Alcotest.(check int) "reactor loops" reactor_config.Daemon_config.reactor_threads
        (Array.length (Daemon.reactors daemon));
      Alcotest.(check bool) "has pool" true (Daemon.buffer_pool daemon <> None);
      List.iter
        (fun transport ->
          let conn =
            vok (Connect.open_uri (remote_uri ~transport ~daemon:name (fresh_name "n")))
          in
          Alcotest.(check bool)
            (transport ^ " works")
            true
            (List.length (vok (Connect.list_domains conn)) = 1);
          Connect.close conn)
        [ "unix"; "tcp"; "tls" ];
      let dispatched =
        Array.fold_left
          (fun acc r -> acc + (Reactor.stats r).Reactor.dispatches)
          0 (Daemon.reactors daemon)
      in
      Alcotest.(check bool) "reactors did the reading" true (dispatched > 0))

let test_threaded_knob_regression () =
  with_daemon ~config:threaded_config (fun name daemon ->
      Alcotest.(check bool) "io model" true
        (Daemon.io_model daemon = Daemon_config.Io_threaded);
      Alcotest.(check int) "no reactors" 0 (Array.length (Daemon.reactors daemon));
      Alcotest.(check bool) "no pool" true (Daemon.buffer_pool daemon = None);
      let conn = vok (Connect.open_uri (remote_uri ~daemon:name (fresh_name "n"))) in
      Alcotest.(check bool) "still serves" true
        (List.length (vok (Connect.list_domains conn)) = 1);
      Connect.close conn)

let echo_packet ~serial body =
  let header =
    Rpc_packet.call_header ~program:Rp.program ~version:Rp.version
      ~procedure:(Rp.proc_to_int Rp.Proc_echo) ~serial
  in
  Rpc_packet.encode header body

let expect_echo raw ~serial expected =
  match Transport.recv_opt raw ~timeout_s:2.0 with
  | Some wire ->
    let rh, body = Rpc_packet.decode wire in
    Alcotest.(check bool) "ok status" true (rh.Rpc_packet.status = Rpc_packet.Status_ok);
    Alcotest.(check int) "serial" serial rh.Rpc_packet.serial;
    Alcotest.(check string) "echo body" expected body
  | None -> Alcotest.fail "no echo reply"

let test_coalesced_packets () =
  (* Two whole packets in one chunk: the state machine must peel both
     — the threaded reader gets exactly one packet per frame and never
     sees this shape. *)
  with_daemon ~config:reactor_config (fun name _ ->
      let raw = Netsim.connect (name ^ "-sock") Transport.Unix_sock in
      Transport.send raw (echo_packet ~serial:1 "alpha" ^ echo_packet ~serial:2 "beta");
      expect_echo raw ~serial:1 "alpha";
      expect_echo raw ~serial:2 "beta";
      Transport.close raw)

let test_split_packet_reassembly () =
  (* One packet split across two chunks: the first fragment is stashed
     in a pool buffer until the remainder arrives. *)
  with_daemon ~config:reactor_config (fun name _ ->
      let raw = Netsim.connect (name ^ "-sock") Transport.Unix_sock in
      let pkt = echo_packet ~serial:9 "reassemble-me" in
      let cut = 7 in
      Transport.send raw (String.sub pkt 0 cut);
      Thread.delay 0.02;
      Transport.send raw (String.sub pkt cut (String.length pkt - cut));
      expect_echo raw ~serial:9 "reassemble-me";
      Transport.close raw)

let test_malformed_drops_connection () =
  with_daemon ~config:reactor_config (fun name _ ->
      let raw = Netsim.connect (name ^ "-sock") Transport.Unix_sock in
      Transport.send raw "certainly not an rpc packet";
      let closed =
        eventually (fun () ->
            match Transport.recv_opt raw ~timeout_s:0.05 with
            | exception Transport.Closed -> true
            | Some _ | None -> false)
      in
      Alcotest.(check bool) "reactor dropped the connection" true closed)

let test_admin_requires_root () =
  with_daemon ~config:reactor_config (fun name _ ->
      let identity =
        Transport.{ uid = 1000; gid = 1000; pid = 5; username = "eve"; groupname = "eve" }
      in
      (match Admin.connect ~daemon:name ~identity () with
       | Error e ->
         Alcotest.(check bool) "refused" true
           (e.Verror.code = Verror.Auth_failed || e.Verror.code = Verror.Rpc_failure)
       | Ok _ -> Alcotest.fail "non-root admin connection accepted");
      (* Root still gets in over the same reactor path. *)
      let admin = vok (Admin.connect ~daemon:name ()) in
      Alcotest.(check (list string)) "both servers" [ "libvirtd"; "admin" ]
        (vok (Admin.list_servers admin));
      Admin.close admin)

let test_fault_parity_under_reactor () =
  (* Chaos reaches reactor connections exactly as it reaches threaded
     ones: a listener fault plan kills a fresh connection mid-stream; the
     daemon survives, old connections are untouched, and clearing the
     plan restores normal accepts. *)
  with_daemon ~config:reactor_config (fun name _ ->
      let survivor = vok (Connect.open_uri (remote_uri ~daemon:name (fresh_name "s"))) in
      ignore (vok (Connect.list_domains survivor));
      Alcotest.(check bool) "plan attached" true
        (Netsim.set_listener_faults (name ^ "-sock")
           (Some (Faults.plan ~seed:7 [ Faults.Drop_after 4 ])));
      (match Connect.open_uri (remote_uri ~daemon:name (fresh_name "d")) with
       | Error _ -> () (* the handshake itself may eat the budget *)
       | Ok doomed ->
         let dead =
           eventually ~timeout_s:4.0 (fun () ->
               match Connect.list_domains doomed with
               | Error _ -> true
               | Ok _ -> false)
         in
         Alcotest.(check bool) "faulted connection dies" true dead);
      Alcotest.(check bool) "plan cleared" true
        (Netsim.set_listener_faults (name ^ "-sock") None);
      ignore (vok (Connect.list_domains survivor));
      let fresh = vok (Connect.open_uri (remote_uri ~daemon:name (fresh_name "f"))) in
      ignore (vok (Connect.list_domains fresh));
      Connect.close fresh;
      Connect.close survivor)

let test_idle_mass_with_hot_traffic () =
  (* A crowd of idle connections costs no threads and no buffers; calls
     still flow for the busy ones. *)
  let config =
    {
      reactor_config with
      Daemon_config.max_clients = 400;
      max_anonymous_clients = 400;
    }
  in
  with_daemon ~config (fun name daemon ->
      let idle =
        List.init 150 (fun _ -> Netsim.connect (name ^ "-sock") Transport.Unix_sock)
      in
      let raw = Netsim.connect (name ^ "-sock") Transport.Unix_sock in
      for i = 1 to 20 do
        Transport.send raw (echo_packet ~serial:i "ping");
        expect_echo raw ~serial:i "ping"
      done;
      let conn = vok (Connect.open_uri (remote_uri ~daemon:name (fresh_name "n"))) in
      Alcotest.(check bool) "api call amid idle mass" true
        (List.length (vok (Connect.list_domains conn)) = 1);
      (match Daemon.buffer_pool daemon with
       | None -> Alcotest.fail "reactor daemon has no pool"
       | Some pool ->
         let s = Bufpool.stats pool in
         Alcotest.(check bool) "idle connections borrow no buffers" true
           (s.Bufpool.s_hits + s.Bufpool.s_misses < 20));
      Connect.close conn;
      Transport.close raw;
      List.iter Transport.close idle)

let () =
  Alcotest.run "reactor"
    [
      ( "core loop",
        [
          quick "readiness dispatch is fifo" test_readiness_ordering;
          quick "edge coalesces, level drains" test_edge_coalesces_level_drains;
          quick "readiness during dispatch is queued" test_wakeup_during_dispatch;
          quick "timers fire earliest-first" test_timer_order_and_fire;
          quick "timer cancel" test_timer_cancel;
          quick "unwatch stops callbacks" test_unwatch_stops_callbacks;
          quick "stop from inside a callback" test_stop_from_callback;
          quick "stats" test_stats_counting;
        ] );
      ( "buffer pool",
        [
          quick "take/give reuses buffers" test_bufpool_reuse;
          quick "wrong-size and overflow drop" test_bufpool_drops;
        ] );
      ( "daemon front end",
        [
          quick "all transports over reactor" test_reactor_daemon_all_transports;
          quick "io_model=threaded still works" test_threaded_knob_regression;
          quick "coalesced packets peeled" test_coalesced_packets;
          quick "split packet reassembled" test_split_packet_reassembly;
          quick "malformed packet drops connection" test_malformed_drops_connection;
          quick "admin socket refuses non-root" test_admin_requires_root;
          quick "fault injection parity" test_fault_parity_under_reactor;
          quick "idle mass with hot traffic" test_idle_mass_with_hot_traffic;
        ] );
    ]
