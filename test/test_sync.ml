(* Reader–writer lock: concurrency semantics the driver nodes rely on. *)

open Testutil
module Rwlock = Ovsync.Rwlock

(* A tiny synchronized cell for cross-thread assertions. *)
module Cell = struct
  type 'a t = { mutex : Mutex.t; cv : Condition.t; mutable v : 'a }

  let make v = { mutex = Mutex.create (); cv = Condition.create (); v }

  let update c f =
    Mutex.lock c.mutex;
    c.v <- f c.v;
    Condition.broadcast c.cv;
    Mutex.unlock c.mutex

  let get c =
    Mutex.lock c.mutex;
    let v = c.v in
    Mutex.unlock c.mutex;
    v

  let wait_for c pred =
    Mutex.lock c.mutex;
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec loop () =
      if pred c.v then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        (* Condition.wait has no timeout; poll with a short sleep. *)
        Mutex.unlock c.mutex;
        Thread.delay 0.002;
        Mutex.lock c.mutex;
        loop ()
      end
    in
    let r = loop () in
    Mutex.unlock c.mutex;
    r
end

(* Two readers must be inside their sections at the same time: each waits
   for the other before leaving. *)
let test_readers_overlap () =
  let lock = Rwlock.create () in
  let inside = Cell.make 0 in
  let both_seen = Cell.make false in
  let reader () =
    Rwlock.with_read lock (fun () ->
        Cell.update inside (fun n -> n + 1);
        if Cell.wait_for inside (fun n -> n >= 2) then
          Cell.update both_seen (fun _ -> true);
        Cell.update inside (fun n -> n - 1))
  in
  let t1 = Thread.create reader () in
  let t2 = Thread.create reader () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check bool) "both readers inside simultaneously" true
    (Cell.get both_seen)

(* A writer takes the lock; readers and other writers must not enter
   until it leaves. *)
let test_writer_excludes () =
  let lock = Rwlock.create () in
  let writer_in = Cell.make false in
  let writer_out = Cell.make false in
  let intruders = Cell.make 0 in
  let saw_writer_done = Cell.make [] in
  let w =
    Thread.create
      (fun () ->
        Rwlock.with_write lock (fun () ->
            Cell.update writer_in (fun _ -> true);
            Thread.delay 0.05;
            Alcotest.(check int) "nobody entered while writing" 0
              (Cell.get intruders);
            Cell.update writer_out (fun _ -> true)))
      ()
  in
  Alcotest.(check bool) "writer entered" true
    (Cell.wait_for writer_in (fun b -> b));
  let contender enter =
    Thread.create
      (fun () ->
        enter lock (fun () ->
            Cell.update intruders (fun n -> n + 1);
            Cell.update saw_writer_done (fun l -> Cell.get writer_out :: l)))
      ()
  in
  let r = contender Rwlock.with_read in
  let w2 = contender Rwlock.with_write in
  Thread.join w;
  Thread.join r;
  Thread.join w2;
  Alcotest.(check bool) "contenders entered only after the writer left" true
    (List.for_all (fun b -> b) (Cell.get saw_writer_done))

(* Writer preference: with readers active and a writer queued, a new
   reader must wait until the writer has been through. *)
let test_writer_preference () =
  let lock = Rwlock.create () in
  let order = Cell.make [] in
  let first_reader_in = Cell.make false in
  let writer_waiting = Cell.make false in
  let release_first = Cell.make false in
  let r1 =
    Thread.create
      (fun () ->
        Rwlock.with_read lock (fun () ->
            Cell.update first_reader_in (fun _ -> true);
            ignore (Cell.wait_for release_first (fun b -> b))))
      ()
  in
  ignore (Cell.wait_for first_reader_in (fun b -> b));
  let w =
    Thread.create
      (fun () ->
        Cell.update writer_waiting (fun _ -> true);
        Rwlock.with_write lock (fun () -> Cell.update order (fun l -> "w" :: l)))
      ()
  in
  ignore (Cell.wait_for writer_waiting (fun b -> b));
  (* Give the writer time to block on the held read lock. *)
  ignore
    (eventually ~timeout_s:0.5 (fun () -> Rwlock.waiting_writers lock = 1));
  let r2 =
    Thread.create
      (fun () ->
        Rwlock.with_read lock (fun () -> Cell.update order (fun l -> "r2" :: l)))
      ()
  in
  Thread.delay 0.02;
  Cell.update release_first (fun _ -> true);
  Thread.join r1;
  Thread.join w;
  Thread.join r2;
  match List.rev (Cell.get order) with
  | [ "w"; "r2" ] -> ()
  | other ->
    Alcotest.failf "writer did not go first: [%s]" (String.concat "; " other)

(* Exclusive (coarse) mode: with_read degrades to the writer path, so two
   "readers" can never overlap — the E14 baseline. *)
let test_exclusive_mode_serializes_readers () =
  let lock = Rwlock.create ~exclusive:true () in
  let inside = Cell.make 0 in
  let max_inside = Cell.make 0 in
  let reader () =
    Rwlock.with_read lock (fun () ->
        Cell.update inside (fun n -> n + 1);
        Cell.update max_inside (fun m -> max m (Cell.get inside));
        Thread.delay 0.01;
        Cell.update inside (fun n -> n - 1))
  in
  let ts = List.init 4 (fun _ -> Thread.create reader ()) in
  List.iter Thread.join ts;
  Alcotest.(check int) "never more than one inside" 1 (Cell.get max_inside)

(* Hammer the lock from mixed readers and writers; the invariant checked
   is mutual exclusion between the writer and everyone else, and that all
   threads terminate (no lost wakeups). *)
let test_stress_invariants () =
  let lock = Rwlock.create () in
  let readers_in = Cell.make 0 in
  let writer_in = Cell.make false in
  let violations = Cell.make 0 in
  let reader () =
    for _ = 1 to 200 do
      Rwlock.with_read lock (fun () ->
          Cell.update readers_in (fun n -> n + 1);
          if Cell.get writer_in then Cell.update violations (fun n -> n + 1);
          Cell.update readers_in (fun n -> n - 1))
    done
  in
  let writer () =
    for _ = 1 to 50 do
      Rwlock.with_write lock (fun () ->
          Cell.update writer_in (fun _ -> true);
          if Cell.get readers_in > 0 then Cell.update violations (fun n -> n + 1);
          Cell.update writer_in (fun _ -> false))
    done
  in
  let ts =
    List.init 4 (fun _ -> Thread.create reader ())
    @ List.init 2 (fun _ -> Thread.create writer ())
  in
  List.iter Thread.join ts;
  Alcotest.(check int) "no exclusion violations" 0 (Cell.get violations);
  Alcotest.(check int) "no readers left inside" 0 (Rwlock.active_readers lock);
  Alcotest.(check int) "no writers left waiting" 0 (Rwlock.waiting_writers lock)

(* Exceptions inside a section must release the lock. *)
let test_exception_releases () =
  let lock = Rwlock.create () in
  (try Rwlock.with_read lock (fun () -> failwith "boom") with Failure _ -> ());
  (try Rwlock.with_write lock (fun () -> failwith "boom") with Failure _ -> ());
  (* If either leaked, this would deadlock; run it under a timeout flag. *)
  let done_ = Cell.make false in
  let t =
    Thread.create
      (fun () ->
        Rwlock.with_write lock (fun () -> ());
        Rwlock.with_read lock (fun () -> ());
        Cell.update done_ (fun _ -> true))
      ()
  in
  Alcotest.(check bool) "lock reusable after exceptions" true
    (Cell.wait_for done_ (fun b -> b));
  Thread.join t

let test_set_exclusive_toggle () =
  let lock = Rwlock.create () in
  Alcotest.(check bool) "starts shared" false (Rwlock.exclusive lock);
  Rwlock.set_exclusive lock true;
  Alcotest.(check bool) "now exclusive" true (Rwlock.exclusive lock);
  (* A section started in coarse mode releases correctly even if the mode
     flips while it runs. *)
  let release = Cell.make false in
  let t =
    Thread.create
      (fun () ->
        Rwlock.with_read lock (fun () ->
            ignore (Cell.wait_for release (fun b -> b))))
      ()
  in
  Thread.delay 0.01;
  Rwlock.set_exclusive lock false;
  Cell.update release (fun _ -> true);
  Thread.join t;
  Rwlock.with_write lock (fun () -> ());
  Alcotest.(check int) "clean state" 0 (Rwlock.active_readers lock)

let () =
  Alcotest.run "sync"
    [
      ( "rwlock",
        [
          quick "readers overlap" test_readers_overlap;
          quick "writer excludes" test_writer_excludes;
          quick "writer preference" test_writer_preference;
          quick "exclusive mode serializes" test_exclusive_mode_serializes_readers;
          quick "stress invariants" test_stress_invariants;
          quick "exception releases" test_exception_releases;
          quick "set_exclusive toggle" test_set_exclusive_toggle;
        ] );
    ]
