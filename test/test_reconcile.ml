(* Declarative desired-state reconciliation: the engine against stub IO
   (policy persistence, convergence planning, exactly-once crash resume,
   backoff isolation of a permanently failing domain, drain-plan
   abandonment, journal compaction), the v1.5 protocol surface, and the
   reconciler wired into a live daemon (policy over the remote program,
   status over the admin program, old-daemon rejection). *)

open Testutil
module Reconcile = Reconcile
module Dompolicy = Ovirt.Dompolicy
module Rp = Protocol.Remote_protocol
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Vm_state = Vmm.Vm_state

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs =
      [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
    (* fast loop so live-daemon tests converge promptly *)
    reconcile_interval_ms = 30;
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "rcnd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

let remote_uri ?(params = "") ~daemon node =
  Printf.sprintf "test+unix://%s/?daemon=%s%s" node daemon params

let policy ?(boot = Dompolicy.Boot_ignore) ?(shut = Dompolicy.Shut_ignore)
    ?(run = Dompolicy.Rs_any) () =
  { Dompolicy.on_boot = boot; on_shutdown = shut; run_state = run }

(* --- stub IO world -------------------------------------------------------- *)

(* An in-memory fleet: (uri, name) -> state.  Absent = undefined.  Ops
   mutate it the way a driver would; [fail] marks a domain whose every
   lifecycle op fails (the permanently diverging guest). *)
type world = {
  wm : Mutex.t;
  tbl : (string * string, Vm_state.state) Hashtbl.t;
  mutable applies : (string * string * Reconcile.op_kind) list;
  mutable failing : (string * string) list;
}

let make_world entries =
  let w =
    { wm = Mutex.create (); tbl = Hashtbl.create 16; applies = []; failing = [] }
  in
  List.iter (fun (k, st) -> Hashtbl.replace w.tbl k st) entries;
  w

let world_io w =
  let locked f =
    Mutex.lock w.wm;
    Fun.protect ~finally:(fun () -> Mutex.unlock w.wm) f
  in
  {
    Reconcile.io_actual =
      (fun uri ->
        locked (fun () ->
            Ok
              (Hashtbl.fold
                 (fun (u, n) st acc -> if u = uri then (n, st) :: acc else acc)
                 w.tbl [])));
    io_state =
      (fun uri name -> locked (fun () -> Ok (Hashtbl.find_opt w.tbl (uri, name))));
    io_apply =
      (fun uri op ->
        locked (fun () ->
            let key = (uri, op.Reconcile.op_name) in
            if List.mem key w.failing then
              Verror.error Verror.Operation_failed "injected failure"
            else begin
              w.applies <- (uri, op.Reconcile.op_name, op.Reconcile.op_kind) :: w.applies;
              (match op.Reconcile.op_kind with
               | Reconcile.Op_start | Reconcile.Op_resume ->
                 Hashtbl.replace w.tbl key Vm_state.Running
               | Reconcile.Op_shutdown | Reconcile.Op_save ->
                 Hashtbl.replace w.tbl key Vm_state.Shutoff);
              Ok ()
            end));
    io_log = (fun _ -> ());
  }

let applies_for w key =
  Mutex.lock w.wm;
  let n =
    List.length (List.filter (fun (u, n, _) -> (u, n) = key) w.applies)
  in
  Mutex.unlock w.wm;
  n

let test_config =
  {
    Reconcile.default_config with
    Reconcile.rcfg_parallel = 1;
    rcfg_diverged_after = 2;
    rcfg_backoff_base_s = 0.;
    rcfg_backoff_cap_s = 0.;
    rcfg_compact_factor = 1000;
    rcfg_compact_slack = 1000;
  }

let engine ?(config = test_config) ~path w =
  Reconcile.create ~journal_path:path ~io:(world_io w) ~config ()

(* Install a crash hook for the duration of [f], restoring the no-op
   hook afterwards even if [f] raises the injected crash. *)
exception Injected_crash

let with_crash_hook hook f =
  Reconcile.crash_hook := hook;
  Fun.protect ~finally:(fun () -> Reconcile.crash_hook := fun _ -> ()) f

let expect_crash f =
  match f () with
  | _ -> Alcotest.fail "expected the injected crash to abort the pass"
  | exception Injected_crash -> ()

(* --- engine: policy persistence ------------------------------------------- *)

let test_policy_persistence () =
  let path = fresh_name "rj" in
  let w = make_world [] in
  let t = engine ~path w in
  let p1 = policy ~boot:Dompolicy.Boot_start ~run:Dompolicy.Rs_running () in
  let p2 = policy ~shut:Dompolicy.Shut_suspend () in
  Reconcile.set_policy t ~uri:"test://a/" ~name:"alpha" p1;
  Reconcile.set_policy t ~uri:"test://a/" ~name:"beta" p2;
  Reconcile.set_policy t ~uri:"test://b/" ~name:"alpha" p2;
  Reconcile.clear_policy t ~uri:"test://b/" ~name:"alpha";
  Alcotest.(check string) "get returns declared" (Dompolicy.to_string p1)
    (Dompolicy.to_string (Reconcile.get_policy t ~uri:"test://a/" ~name:"alpha"));
  Alcotest.(check string) "cleared falls back to default"
    (Dompolicy.to_string Dompolicy.default)
    (Dompolicy.to_string (Reconcile.get_policy t ~uri:"test://b/" ~name:"alpha"));
  (* A second incarnation on the same journal sees the same specs. *)
  let t2 = engine ~path w in
  Alcotest.(check string) "replayed p1" (Dompolicy.to_string p1)
    (Dompolicy.to_string (Reconcile.get_policy t2 ~uri:"test://a/" ~name:"alpha"));
  Alcotest.(check string) "replayed p2" (Dompolicy.to_string p2)
    (Dompolicy.to_string (Reconcile.get_policy t2 ~uri:"test://a/" ~name:"beta"));
  let summary, rows = Reconcile.status t2 in
  Alcotest.(check int) "two specs survive" 2 summary.Reconcile.sum_specs;
  Alcotest.(check int) "two rows" 2 (List.length rows)

(* --- engine: convergence --------------------------------------------------- *)

let test_convergence () =
  let uri = "test://conv/" in
  let w =
    make_world
      [
        ((uri, "stopped"), Vm_state.Shutoff);
        ((uri, "paused"), Vm_state.Paused);
        ((uri, "runaway"), Vm_state.Running);
        ((uri, "fine"), Vm_state.Running);
      ]
  in
  let t = engine ~path:(fresh_name "rj") w in
  Reconcile.set_policy t ~uri ~name:"stopped" (policy ~run:Dompolicy.Rs_running ());
  Reconcile.set_policy t ~uri ~name:"paused" (policy ~run:Dompolicy.Rs_running ());
  Reconcile.set_policy t ~uri ~name:"runaway" (policy ~run:Dompolicy.Rs_stopped ());
  Reconcile.set_policy t ~uri ~name:"fine" (policy ~run:Dompolicy.Rs_running ());
  let summary = Reconcile.converge_now t in
  Alcotest.(check int) "three ops applied" 3 summary.Reconcile.sum_ops_applied;
  (* Convergence is only claimed once a later diff verifies the
     postcondition: right after the applying pass the three corrected
     specs are still "pending", only the already-satisfied one counts. *)
  Alcotest.(check int) "only the untouched spec converged" 1
    summary.Reconcile.sum_converged;
  Alcotest.(check int) "corrected specs await verification" 3
    summary.Reconcile.sum_pending;
  Alcotest.(check bool) "stopped started" true
    (Hashtbl.find w.tbl (uri, "stopped") = Vm_state.Running);
  Alcotest.(check bool) "paused resumed" true
    (Hashtbl.find w.tbl (uri, "paused") = Vm_state.Running);
  Alcotest.(check bool) "runaway shut down" true
    (Hashtbl.find w.tbl (uri, "runaway") = Vm_state.Shutoff);
  Alcotest.(check int) "satisfied spec untouched" 0 (applies_for w (uri, "fine"));
  (* Steady state: the second pass verifies and plans nothing further. *)
  let summary = Reconcile.converge_now t in
  Alcotest.(check int) "no further ops" 3
    (summary.Reconcile.sum_ops_applied + summary.Reconcile.sum_ops_skipped);
  Alcotest.(check int) "all verified converged" 4 summary.Reconcile.sum_converged

let test_on_boot_semantics () =
  let uri = "test://boot/" in
  let w = make_world [ ((uri, "auto"), Vm_state.Shutoff) ] in
  let path = fresh_name "rj" in
  let t = engine ~path w in
  Reconcile.set_policy t ~uri ~name:"auto" (policy ~boot:Dompolicy.Boot_start ());
  ignore (Reconcile.converge_now t);
  Alcotest.(check bool) "boot pass started it" true
    (Hashtbl.find w.tbl (uri, "auto") = Vm_state.Running);
  (* The guest stopping later is NOT corrected: on_boot is a boot-time
     rule, only run_state=running is enforced continuously. *)
  Hashtbl.replace w.tbl (uri, "auto") Vm_state.Shutoff;
  ignore (Reconcile.converge_now t);
  Alcotest.(check bool) "not restarted mid-flight" true
    (Hashtbl.find w.tbl (uri, "auto") = Vm_state.Shutoff);
  (* ...but a fresh incarnation (daemon restart) boots it again. *)
  let t2 = engine ~path w in
  ignore (Reconcile.converge_now t2);
  Alcotest.(check bool) "restarted at next boot" true
    (Hashtbl.find w.tbl (uri, "auto") = Vm_state.Running)

(* --- engine: failure isolation -------------------------------------------- *)

let test_failing_domain_isolated () =
  let uri = "test://iso/" in
  let w =
    make_world
      [ ((uri, "sick"), Vm_state.Shutoff); ((uri, "healthy"), Vm_state.Shutoff) ]
  in
  w.failing <- [ (uri, "sick") ];
  let t = engine ~path:(fresh_name "rj") w in
  Reconcile.set_policy t ~uri ~name:"sick" (policy ~run:Dompolicy.Rs_running ());
  Reconcile.set_policy t ~uri ~name:"healthy" (policy ~run:Dompolicy.Rs_running ());
  let s1 = Reconcile.converge_now t in
  (* The healthy domain converged on the very pass the sick one failed:
     one failure never wedges the rest of the fleet. *)
  Alcotest.(check bool) "healthy running" true
    (Hashtbl.find w.tbl (uri, "healthy") = Vm_state.Running);
  Alcotest.(check int) "one failure recorded" 1 s1.Reconcile.sum_ops_failed;
  let s2 = Reconcile.converge_now t in
  Alcotest.(check int) "diverged after repeated failures" 1
    s2.Reconcile.sum_diverged;
  let _, rows = Reconcile.status t in
  let sick = List.find (fun r -> r.Reconcile.ds_name = "sick") rows in
  Alcotest.(check bool) "diverged row" true
    (sick.Reconcile.ds_status = Reconcile.St_diverged);
  Alcotest.(check bool) "error surfaced" true
    (sick.Reconcile.ds_last_error <> "");
  (* Repair the domain: the next pass converges it and clears the
     attempt counter. *)
  w.failing <- [];
  let s3 = Reconcile.converge_now t in
  Alcotest.(check int) "nothing diverged" 0 s3.Reconcile.sum_diverged;
  Alcotest.(check bool) "sick recovered" true
    (Hashtbl.find w.tbl (uri, "sick") = Vm_state.Running)

let test_backoff_gates_retries () =
  let uri = "test://bo/" in
  let w = make_world [ ((uri, "flappy"), Vm_state.Shutoff) ] in
  w.failing <- [ (uri, "flappy") ];
  let config =
    { test_config with
      Reconcile.rcfg_backoff_base_s = 60.;
      rcfg_backoff_cap_s = 120. }
  in
  let t = engine ~config ~path:(fresh_name "rj") w in
  Reconcile.set_policy t ~uri ~name:"flappy" (policy ~run:Dompolicy.Rs_running ());
  let s1 = Reconcile.converge_now t in
  Alcotest.(check int) "first attempt failed" 1 s1.Reconcile.sum_ops_failed;
  let s2 = Reconcile.converge_now t in
  Alcotest.(check int) "backoff suppressed the retry" 1 s2.Reconcile.sum_ops_failed;
  Alcotest.(check int) "still pending, not converged" 1 s2.Reconcile.sum_pending;
  let _, rows = Reconcile.status t in
  let r = List.hd rows in
  Alcotest.(check bool) "retry countdown exposed" true
    (r.Reconcile.ds_retry_in_s > 0.)

(* --- engine: crash resume -------------------------------------------------- *)

(* Kill the pass between the side effect and its checkpoint — the
   nastiest window: the journal says the op is outstanding, the world
   says it already happened.  Resume must skip, not repeat it. *)
let test_crash_resume_exactly_once () =
  let uri = "test://crash/" in
  let w = make_world [ ((uri, "dom"), Vm_state.Shutoff) ] in
  let path = fresh_name "rj" in
  let t = engine ~path w in
  Reconcile.set_policy t ~uri ~name:"dom" (policy ~run:Dompolicy.Rs_running ());
  with_crash_hook
    (fun site -> if site = "post_apply" then raise Injected_crash)
    (fun () -> expect_crash (fun () -> Reconcile.converge_now t));
  Alcotest.(check int) "side effect landed before the crash" 1
    (applies_for w (uri, "dom"));
  (* New incarnation on the surviving journal. *)
  let t2 = engine ~path w in
  let s = Reconcile.converge_now t2 in
  Alcotest.(check bool) "plan was resumed" true s.Reconcile.sum_resumed;
  Alcotest.(check int) "op skipped, not re-applied" 1 s.Reconcile.sum_ops_skipped;
  Alcotest.(check int) "exactly one side effect ever" 1
    (applies_for w (uri, "dom"));
  Alcotest.(check int) "spec holds" 1 s.Reconcile.sum_converged

(* Crash right after the plan hits the journal, before any op runs: the
   whole plan must be replayed and applied by the next incarnation. *)
let test_crash_before_apply_resumes_all () =
  let uri = "test://crash2/" in
  let w =
    make_world
      [ ((uri, "d1"), Vm_state.Shutoff); ((uri, "d2"), Vm_state.Shutoff) ]
  in
  let path = fresh_name "rj" in
  let t = engine ~path w in
  Reconcile.set_policy t ~uri ~name:"d1" (policy ~run:Dompolicy.Rs_running ());
  Reconcile.set_policy t ~uri ~name:"d2" (policy ~run:Dompolicy.Rs_running ());
  with_crash_hook
    (fun site -> if site = "plan_journaled" then raise Injected_crash)
    (fun () -> expect_crash (fun () -> Reconcile.converge_now t));
  Alcotest.(check int) "no side effects yet" 0
    (applies_for w (uri, "d1") + applies_for w (uri, "d2"));
  let t2 = engine ~path w in
  let s = Reconcile.converge_now t2 in
  Alcotest.(check bool) "resumed" true s.Reconcile.sum_resumed;
  Alcotest.(check int) "both applied exactly once" 2 s.Reconcile.sum_ops_applied;
  Alcotest.(check bool) "both running" true
    (Hashtbl.find w.tbl (uri, "d1") = Vm_state.Running
    && Hashtbl.find w.tbl (uri, "d2") = Vm_state.Running)

(* --- engine: drain pass ---------------------------------------------------- *)

let test_shutdown_pass_and_abandonment () =
  let uri = "test://drain/" in
  let w =
    make_world
      [ ((uri, "saver"), Vm_state.Running); ((uri, "stopper"), Vm_state.Running) ]
  in
  let path = fresh_name "rj" in
  let t = engine ~path w in
  Reconcile.set_policy t ~uri ~name:"saver"
    (policy ~shut:Dompolicy.Shut_suspend ());
  Reconcile.set_policy t ~uri ~name:"stopper"
    (policy ~shut:Dompolicy.Shut_shutdown ());
  Reconcile.shutdown_pass t;
  Alcotest.(check int) "both drained" 2
    (applies_for w (uri, "saver") + applies_for w (uri, "stopper"));
  (* Now the abandonment half: a drain pass killed before any op runs
     must NOT be replayed at the next boot (boot semantics take over). *)
  Hashtbl.replace w.tbl (uri, "saver") Vm_state.Running;
  Hashtbl.replace w.tbl (uri, "stopper") Vm_state.Running;
  with_crash_hook
    (fun site -> if site = "pre_apply" then raise Injected_crash)
    (fun () -> expect_crash (fun () -> Reconcile.shutdown_pass t));
  let t2 = engine ~path w in
  ignore (Reconcile.converge_now t2);
  Alcotest.(check bool) "interrupted drain not replayed at boot" true
    (Hashtbl.find w.tbl (uri, "saver") = Vm_state.Running
    && Hashtbl.find w.tbl (uri, "stopper") = Vm_state.Running)

(* --- engine: journal compaction -------------------------------------------- *)

let test_journal_compaction () =
  let uri = "test://compact/" in
  let w = make_world [ ((uri, "dom"), Vm_state.Running) ] in
  let config =
    { test_config with Reconcile.rcfg_compact_factor = 2; rcfg_compact_slack = 4 }
  in
  let t = engine ~config ~path:(fresh_name "rj") w in
  for _ = 1 to 50 do
    Reconcile.set_policy t ~uri ~name:"dom" (policy ~run:Dompolicy.Rs_running ())
  done;
  (* 50 'P' records were appended; the live set is one spec. *)
  Alcotest.(check bool) "journal compacted"
    true
    (Reconcile.journal_records t <= 2 * 1 + 4 + 1);
  Alcotest.(check string) "spec survives compaction"
    (Dompolicy.to_string (policy ~run:Dompolicy.Rs_running ()))
    (Dompolicy.to_string (Reconcile.get_policy t ~uri ~name:"dom"))

(* --- protocol surface ------------------------------------------------------ *)

let test_v15_numbers_stable () =
  Alcotest.(check int) "build minor" 7 Rp.minor;
  Alcotest.(check int) "set_policy is 50" 50 (Rp.proc_to_int Rp.Proc_dom_set_policy);
  Alcotest.(check int) "get_policy is 51" 51 (Rp.proc_to_int Rp.Proc_dom_get_policy);
  Alcotest.(check int) "reconcile_status is 52" 52
    (Rp.proc_to_int Rp.Proc_daemon_reconcile_status);
  List.iter
    (fun p -> Alcotest.(check int) "new procs need minor 5" 5 (Rp.proc_min_minor p))
    [ Rp.Proc_dom_set_policy; Rp.Proc_dom_get_policy; Rp.Proc_daemon_reconcile_status ];
  (* v1.4 numbers must not have moved. *)
  Alcotest.(check int) "deadline envelope still 49" 49
    (Rp.proc_to_int Rp.Proc_call_deadline);
  Alcotest.(check bool) "set_policy is not blindly retried" false
    (Rp.is_idempotent Rp.Proc_dom_set_policy);
  Alcotest.(check bool) "get_policy is retryable" true
    (Rp.is_idempotent Rp.Proc_dom_get_policy)

let test_policy_codec_roundtrip () =
  List.iter
    (fun p ->
      let name = "dom-x" in
      Alcotest.(check bool) "set_policy roundtrip" true
        (Rp.dec_set_policy (Rp.enc_set_policy name p) = (name, p));
      Alcotest.(check bool) "policy roundtrip" true
        (Rp.dec_policy (Rp.enc_policy p) = p))
    [
      Dompolicy.default;
      policy ~boot:Dompolicy.Boot_start ~shut:Dompolicy.Shut_suspend
        ~run:Dompolicy.Rs_running ();
      policy ~shut:Dompolicy.Shut_shutdown ~run:Dompolicy.Rs_stopped ();
    ]

(* --- live daemon: policy over the wire ------------------------------------- *)

let test_policy_over_remote () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "polnode" in
      let conn = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let cfg = Vmm.Vm_config.make ~memory_kib:(8 * 1024) "pol-dom" in
      let dom =
        vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg))
      in
      (* Defaults until declared. *)
      Alcotest.(check string) "default policy"
        (Dompolicy.to_string Dompolicy.default)
        (Dompolicy.to_string (vok (Domain.get_policy dom)));
      let p = policy ~run:Dompolicy.Rs_running () in
      vok (Domain.set_policy dom p);
      Alcotest.(check string) "declared policy read back"
        (Dompolicy.to_string p)
        (Dompolicy.to_string (vok (Domain.get_policy dom)));
      (* The daemon-side reconciler converges the declared spec: the
         domain was defined shut off, the loop must start it. *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait () =
        let info = vok (Domain.get_info dom) in
        if Vmm.Vm_state.is_active info.Ovirt.Driver.di_state then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "reconciler never started the domain"
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ();
      Connect.close conn)

let test_admin_reconcile_status () =
  with_daemon (fun daemon _ ->
      let node = fresh_name "adnode" in
      let conn = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let cfg = Vmm.Vm_config.make ~memory_kib:(8 * 1024) "ad-dom" in
      let dom =
        vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg))
      in
      vok (Domain.set_policy dom (policy ~run:Dompolicy.Rs_running ()));
      let admin = vok (Ovirt.Admin_client.connect ~daemon ()) in
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait () =
        let summary, _ = vok (Ovirt.Admin_client.reconcile_status admin) in
        if summary.Reconcile.sum_converged = 1 then summary
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "never converged (specs=%d pending=%d)"
            summary.Reconcile.sum_specs summary.Reconcile.sum_pending
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      let summary = wait () in
      Alcotest.(check int) "one spec" 1 summary.Reconcile.sum_specs;
      let _, rows = vok (Ovirt.Admin_client.reconcile_status admin) in
      (match rows with
       | [ r ] ->
         Alcotest.(check string) "row names the domain" "ad-dom"
           r.Reconcile.ds_name;
         Alcotest.(check bool) "row converged" true
           (r.Reconcile.ds_status = Reconcile.St_converged)
       | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
      Ovirt.Admin_client.close admin;
      Connect.close conn)

(* --- live daemon: old daemons reject the new procedures -------------------- *)

let v14_config = { quiet_config with Daemon_config.proto_minor = 4 }

let test_v14_daemon_rejects_policy_procs () =
  with_daemon ~config:v14_config (fun daemon _ ->
      let node = fresh_name "oldnode" in
      let conn = vok (Connect.open_uri (remote_uri ~daemon node)) in
      let cfg = Vmm.Vm_config.make ~memory_kib:(8 * 1024) "old-dom" in
      let dom =
        vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg))
      in
      (* Byte-identical to an unknown procedure number: the pinned daemon
         is indistinguishable from a build that predates v1.5. *)
      (match Domain.set_policy dom Dompolicy.default with
       | Ok () -> Alcotest.fail "v1.4 daemon accepted set_policy"
       | Error e ->
         Alcotest.(check string) "same wording as unknown"
           (Printf.sprintf "unknown remote procedure %d"
              (Rp.proc_to_int Rp.Proc_dom_set_policy))
           e.Verror.message);
      expect_verr Verror.Rpc_failure (Domain.get_policy dom);
      Connect.close conn)

(* --- suite ----------------------------------------------------------------- *)

let () =
  Alcotest.run "reconcile"
    [
      ( "engine",
        [
          quick "policy persistence across incarnations" test_policy_persistence;
          quick "convergence plans minimal ops" test_convergence;
          quick "on_boot is a boot-time rule" test_on_boot_semantics;
          quick "failing domain never wedges the fleet" test_failing_domain_isolated;
          quick "backoff gates retries" test_backoff_gates_retries;
          quick "compaction keeps the live set" test_journal_compaction;
        ] );
      ( "crash chaos",
        [
          quick "kill between apply and checkpoint: exactly once"
            test_crash_resume_exactly_once;
          quick "kill after plan journaled: full resume"
            test_crash_before_apply_resumes_all;
          quick "drain plans abandoned at boot" test_shutdown_pass_and_abandonment;
        ] );
      ( "protocol",
        [
          quick "v1.5 numbers stable" test_v15_numbers_stable;
          quick "policy codec roundtrip" test_policy_codec_roundtrip;
        ] );
      ( "live daemon",
        [
          quick "policy over the remote program" test_policy_over_remote;
          quick "reconcile-status over the admin program"
            test_admin_reconcile_status;
          quick "v1.4 daemon rejects policy procs"
            test_v14_daemon_rejects_policy_procs;
        ] );
    ]
