(* RPC layer: packet framing, typed parameters, protocol tables, and the
   shared body codecs. *)

open Testutil
module Rpc_packet = Ovrpc.Rpc_packet
module Tp = Ovrpc.Typed_params
module Rp = Protocol.Remote_protocol
module Ap = Protocol.Admin_protocol
module Verror = Ovirt_core.Verror
module Driver = Ovirt_core.Driver

(* --- Rpc_packet --------------------------------------------------------- *)

let sample_header =
  Rpc_packet.call_header ~program:Rp.program ~version:1 ~procedure:5 ~serial:42

let test_packet_roundtrip () =
  let wire = Rpc_packet.encode sample_header "payload" in
  let header, body = Rpc_packet.decode wire in
  Alcotest.(check bool) "header preserved" true (header = sample_header);
  Alcotest.(check string) "body preserved" "payload" body

let test_packet_empty_body () =
  let wire = Rpc_packet.encode sample_header "" in
  let _, body = Rpc_packet.decode wire in
  Alcotest.(check string) "empty body" "" body;
  Alcotest.(check int) "4 len + 24 header" 28 (String.length wire)

let test_packet_reply_builders () =
  let ok = Rpc_packet.reply_ok sample_header in
  Alcotest.(check bool) "reply type" true (ok.Rpc_packet.msg_type = Rpc_packet.Reply);
  Alcotest.(check int) "serial echoed" 42 ok.Rpc_packet.serial;
  let err = Rpc_packet.reply_error sample_header in
  Alcotest.(check bool) "error status" true (err.Rpc_packet.status = Rpc_packet.Status_error);
  let ev = Rpc_packet.event_header ~program:1 ~version:1 ~procedure:2 in
  Alcotest.(check int) "event serial 0" 0 ev.Rpc_packet.serial

let test_packet_malformations () =
  let wire = Rpc_packet.encode sample_header "data" in
  let reject label s =
    match Rpc_packet.decode s with
    | exception Rpc_packet.Bad_packet _ -> ()
    | _ -> Alcotest.failf "accepted %s" label
  in
  reject "empty" "";
  reject "truncated header" (String.sub wire 0 10);
  reject "truncated body" (String.sub wire 0 (String.length wire - 2));
  reject "extended" (wire ^ "x");
  (* Corrupt the message type to 9 *)
  let bytes = Bytes.of_string wire in
  Bytes.set bytes 19 '\009';
  reject "bad type" (Bytes.to_string bytes)

let test_packet_size_cap () =
  match Rpc_packet.encode sample_header (String.make (Rpc_packet.max_packet_size + 1) 'x') with
  | exception Rpc_packet.Bad_packet _ -> ()
  | _ -> Alcotest.fail "oversized packet encoded"

let prop_packet_roundtrip =
  let gen =
    QCheck.Gen.(
      let* procedure = int_range 1 100 in
      let* serial = int_range 0 100000 in
      let* body = small_string ~gen:printable in
      return (procedure, serial, body))
  in
  qcheck_case "packet roundtrip" (QCheck.make gen) (fun (procedure, serial, body) ->
      let header =
        Rpc_packet.call_header ~program:Rp.program ~version:1 ~procedure ~serial
      in
      Rpc_packet.decode (Rpc_packet.encode header body) = (header, body))

(* --- Typed_params ------------------------------------------------------- *)

let sample_params =
  [
    Tp.uint "maxWorkers" 20;
    Tp.int "delta" (-3);
    Tp.bool "readonly" false;
    Tp.string "sock_addr" "10.0.0.1:99";
    ("big", Tp.P_ullong 0x1234_5678_9abc_def0L);
    ("ratio", Tp.P_double 0.25);
  ]

let roundtrip params = Xdr.decode Tp.decode (Xdr.encode Tp.encode params)

let test_params_roundtrip () =
  Alcotest.(check bool) "all scalar types survive" true
    (roundtrip sample_params = sample_params)

let test_params_validation () =
  let dup = [ Tp.uint "x" 1; Tp.uint "x" 2 ] in
  (match Xdr.encode Tp.encode dup with
   | exception Tp.Invalid _ -> ()
   | _ -> Alcotest.fail "duplicate fields accepted");
  let long = [ Tp.uint (String.make 81 'a') 1 ] in
  (match Xdr.encode Tp.encode long with
   | exception Tp.Invalid _ -> ()
   | _ -> Alcotest.fail "over-long field accepted");
  match Xdr.encode Tp.encode [ Tp.uint "" 1 ] with
  | exception Tp.Invalid _ -> ()
  | _ -> Alcotest.fail "empty field accepted"

let test_params_typed_accessors () =
  Alcotest.(check (option int)) "uint found" (Some 20)
    (Tp.find_uint sample_params "maxWorkers");
  Alcotest.(check (option int)) "missing is None" None
    (Tp.find_uint sample_params "nothing");
  (match Tp.find_uint sample_params "sock_addr" with
   | exception Tp.Invalid _ -> ()
   | _ -> Alcotest.fail "string read as uint");
  Alcotest.(check (option string)) "string found" (Some "10.0.0.1:99")
    (Tp.find_string sample_params "sock_addr");
  match Tp.uint "neg" (-1) with
  | exception Tp.Invalid _ -> ()
  | _ -> Alcotest.fail "negative uint built"

let gen_params =
  QCheck.Gen.(
    let* n = int_bound 6 in
    let value =
      oneof
        [
          map (fun v -> Tp.P_int v) small_signed_int;
          map (fun v -> Tp.P_uint (abs v)) small_signed_int;
          map (fun v -> Tp.P_llong v) int64;
          map (fun v -> Tp.P_bool v) bool;
          map (fun v -> Tp.P_string v) (small_string ~gen:printable);
        ]
    in
    let* values = list_size (return n) value in
    return (List.mapi (fun i v -> (Printf.sprintf "field%d" i, v)) values))

let prop_params_roundtrip =
  qcheck_case "typed params roundtrip" (QCheck.make gen_params) (fun params ->
      roundtrip params = params)

(* --- Protocol tables ---------------------------------------------------- *)

let test_remote_proc_numbers_stable () =
  Alcotest.(check int) "open is 1" 1 (Rp.proc_to_int Rp.Proc_open);
  Alcotest.(check int) "echo stays put" 38 (Rp.proc_to_int Rp.Proc_echo);
  Alcotest.(check bool) "roundtrip all" true
    (List.for_all
       (fun n ->
         match Rp.proc_of_int n with
         | Ok p -> Rp.proc_to_int p = n
         | Error _ -> false)
       (List.init 48 (fun i -> i + 1)));
  (match Rp.proc_of_int 0 with Error _ -> () | Ok _ -> Alcotest.fail "0 valid");
  match Rp.proc_of_int 1000 with Error _ -> () | Ok _ -> Alcotest.fail "1000 valid"

let test_priority_classification () =
  (* Reads are high priority (safe for priority workers); state changes
     are not. *)
  Alcotest.(check bool) "list is high" true (Rp.is_high_priority Rp.Proc_list_domains);
  Alcotest.(check bool) "getinfo is high" true (Rp.is_high_priority Rp.Proc_dom_get_info);
  Alcotest.(check bool) "create is low" false (Rp.is_high_priority Rp.Proc_dom_create);
  Alcotest.(check bool) "destroy is low" false (Rp.is_high_priority Rp.Proc_dom_destroy);
  Alcotest.(check bool) "save is low" false (Rp.is_high_priority Rp.Proc_dom_save);
  Alcotest.(check bool) "save probe is high" true
    (Rp.is_high_priority Rp.Proc_dom_has_managed_save);
  Alcotest.(check bool) "admin always high" true
    (Ap.is_high_priority Ap.Proc_set_threadpool)

let test_admin_proc_numbers_stable () =
  Alcotest.(check int) "list_servers is 1" 1 (Ap.proc_to_int Ap.Proc_list_servers);
  Alcotest.(check bool) "roundtrip all" true
    (List.for_all
       (fun n ->
         match Ap.proc_of_int n with
         | Ok p -> Ap.proc_to_int p = n
         | Error _ -> false)
       (List.init 16 (fun i -> i + 1)))

(* --- Shared body codecs -------------------------------------------------- *)

let test_error_body_roundtrip () =
  let err = Verror.make Verror.No_domain "missing" in
  Alcotest.(check bool) "roundtrip" true (Rp.dec_error (Rp.enc_error err) = err)

let test_domain_ref_roundtrip () =
  let r =
    Driver.
      { dom_name = "vm1"; dom_uuid = Vmm.Uuid.generate (); dom_id = Some 7 }
  in
  Alcotest.(check bool) "single" true (Rp.dec_domain_ref (Rp.enc_domain_ref r) = r);
  let r2 = { r with Driver.dom_id = None; dom_name = "vm2" } in
  Alcotest.(check bool) "list" true
    (Rp.dec_domain_ref_list (Rp.enc_domain_ref_list [ r; r2 ]) = [ r; r2 ])

let test_domain_info_roundtrip () =
  List.iter
    (fun state ->
      let info =
        Driver.
          {
            di_state = state;
            di_max_mem_kib = 1024;
            di_memory_kib = 512;
            di_vcpus = 2;
            di_cpu_time_ns = 123456789L;
          }
      in
      Alcotest.(check bool)
        (Vmm.Vm_state.state_name state ^ " roundtrips")
        true
        (Rp.dec_domain_info (Rp.enc_domain_info info) = info))
    Vmm.Vm_state.[ Running; Blocked; Paused; Shutdown; Shutoff; Crashed ]

let test_lifecycle_event_roundtrip () =
  let ev =
    Ovirt_core.Events.
      { domain_name = "vm"; lifecycle = Ovirt_core.Events.Ev_migrated; seq = 0 }
  in
  Alcotest.(check bool) "roundtrip" true
    (Rp.dec_lifecycle_event (Rp.enc_lifecycle_event ev) = ev)

let test_admin_body_roundtrips () =
  Alcotest.(check string) "server name" "libvirtd"
    (Ap.dec_server_name (Ap.enc_server_name "libvirtd"));
  let server, params =
    Ap.dec_server_params (Ap.enc_server_params ~server:"admin" [ Tp.uint "maxWorkers" 5 ])
  in
  Alcotest.(check string) "server" "admin" server;
  Alcotest.(check (option int)) "param" (Some 5) (Tp.find_uint params "maxWorkers");
  let server2, id = Ap.dec_client_ref (Ap.enc_client_ref ~server:"libvirtd" ~id:9L) in
  Alcotest.(check string) "ref server" "libvirtd" server2;
  Alcotest.(check int64) "ref id" 9L id;
  let entries =
    [
      Ap.{ client_id = 1L; client_transport = 0; connected_since = 1000L };
      Ap.{ client_id = 2L; client_transport = 2; connected_since = 2000L };
    ]
  in
  Alcotest.(check bool) "client list" true
    (Ap.dec_client_list (Ap.enc_client_list entries) = entries)

let test_net_and_pool_bodies () =
  let ninfo =
    Ovirt_core.Net_backend.
      {
        net_name = "default";
        net_uuid = Vmm.Uuid.generate ();
        bridge = "virbr0";
        ip_range = "192.168.122.0/24";
        active = true;
        autostart = false;
        connected_ifaces = 3;
      }
  in
  Alcotest.(check bool) "net info" true (Rp.dec_net_info (Rp.enc_net_info ninfo) = ninfo);
  let pinfo =
    Ovirt_core.Storage_backend.
      {
        pool_name = "default";
        pool_uuid = Vmm.Uuid.generate ();
        target_path = "/v";
        capacity_b = 1 lsl 40;
        allocation_b = 12345;
        pool_active = true;
        volume_count = 2;
      }
  in
  Alcotest.(check bool) "pool info" true
    (Rp.dec_pool_info (Rp.enc_pool_info pinfo) = pinfo);
  let vinfo =
    Ovirt_core.Storage_backend.
      { vol_name = "a"; vol_key = "/v/a"; vol_capacity_b = 77; vol_format = "raw" }
  in
  Alcotest.(check bool) "vol info list" true
    (Rp.dec_vol_info_list (Rp.enc_vol_info_list [ vinfo ]) = [ vinfo ])

let test_garbage_bodies_rejected () =
  List.iter
    (fun (label, f) ->
      match f "garbage-bytes-here" with
      | exception Xdr.Error _ -> ()
      | _ -> Alcotest.failf "%s accepted garbage" label)
    [
      ("error", fun s -> ignore (Rp.dec_error s));
      ("domain_ref", fun s -> ignore (Rp.dec_domain_ref s));
      ("domain_info", fun s -> ignore (Rp.dec_domain_info s));
      ("net_info", fun s -> ignore (Rp.dec_net_info s));
      ("client_list", fun s -> ignore (Ap.dec_client_list s));
    ]

(* --- fuzz: decoders never escape their error type --------------------- *)

let prop_packet_decode_total =
  qcheck_case ~count:500 "packet decode is total" QCheck.string (fun s ->
      match Rpc_packet.decode s with
      | _ -> true
      | exception Rpc_packet.Bad_packet _ -> true
      | exception _ -> false)

let prop_packet_decode_mutation =
  (* Bit-flip a valid packet: decode either succeeds (flip hit the body)
     or raises Bad_packet — never anything else, never a crash. *)
  let gen = QCheck.Gen.(pair (int_bound 30) (int_bound 7)) in
  qcheck_case ~count:300 "mutated packets classified" (QCheck.make gen)
    (fun (pos, bit) ->
      let wire = Bytes.of_string (Rpc_packet.encode sample_header "abcdef") in
      let pos = pos mod Bytes.length wire in
      Bytes.set wire pos (Char.chr (Char.code (Bytes.get wire pos) lxor (1 lsl bit)));
      match Rpc_packet.decode (Bytes.to_string wire) with
      | _ -> true
      | exception Rpc_packet.Bad_packet _ -> true
      | exception _ -> false)

let prop_typed_params_decode_total =
  qcheck_case ~count:500 "typed-params decode is total" QCheck.string (fun s ->
      match Xdr.decode Tp.decode s with
      | _ -> true
      | exception Xdr.Error _ -> true
      | exception Tp.Invalid _ -> true
      | exception _ -> false)

let prop_error_body_decode_total =
  qcheck_case ~count:500 "error-body decode is total" QCheck.string (fun s ->
      match Rp.dec_error s with
      | _ -> true
      | exception Xdr.Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "rpc"
    [
      ( "packets",
        [
          quick "roundtrip" test_packet_roundtrip;
          quick "empty body" test_packet_empty_body;
          quick "reply builders" test_packet_reply_builders;
          quick "malformations rejected" test_packet_malformations;
          quick "size cap" test_packet_size_cap;
          prop_packet_roundtrip;
        ] );
      ( "typed params",
        [
          quick "roundtrip" test_params_roundtrip;
          quick "validation" test_params_validation;
          quick "typed accessors" test_params_typed_accessors;
          prop_params_roundtrip;
        ] );
      ( "protocol tables",
        [
          quick "remote numbers stable" test_remote_proc_numbers_stable;
          quick "priority classification" test_priority_classification;
          quick "admin numbers stable" test_admin_proc_numbers_stable;
        ] );
      ( "fuzz",
        [
          prop_packet_decode_total;
          prop_packet_decode_mutation;
          prop_typed_params_decode_total;
          prop_error_body_decode_total;
        ] );
      ( "body codecs",
        [
          quick "error body" test_error_body_roundtrip;
          quick "domain ref" test_domain_ref_roundtrip;
          quick "domain info (all states)" test_domain_info_roundtrip;
          quick "lifecycle event" test_lifecycle_event_roundtrip;
          quick "admin bodies" test_admin_body_roundtrips;
          quick "net and pool bodies" test_net_and_pool_bodies;
          quick "garbage rejected" test_garbage_bodies_rejected;
        ] );
    ]
