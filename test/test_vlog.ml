(* Logging subsystem: level hierarchy, filter precedence, output routing,
   textual syntax (the admin wire format), and atomic redefinition. *)

open Testutil

let file_out path = { Vlog.min_priority = Vlog.Debug; sink = Vlog.File path }
let null_out level = { Vlog.min_priority = level; sink = Vlog.Null }

let count_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "") |> List.length

let test_level_hierarchy () =
  (* Inclusive hierarchy: each level admits itself and the more severe. *)
  let expectations =
    [ (Vlog.Debug, 4); (Vlog.Info, 3); (Vlog.Warn, 2); (Vlog.Error, 1) ]
  in
  List.iter
    (fun (level, expected) ->
      let t = Vlog.create ~level ~outputs:[ file_out "/log" ] () in
      List.iter
        (fun p -> Vlog.log t ~module_:"m" p "msg")
        [ Vlog.Debug; Vlog.Info; Vlog.Warn; Vlog.Error ];
      Alcotest.(check int)
        (Printf.sprintf "level %s admits %d" (Vlog.priority_name level) expected)
        expected
        (count_lines (Vlog.file_contents t "/log")))
    expectations

let test_priority_ints () =
  Alcotest.(check int) "debug=1" 1 (Vlog.priority_to_int Vlog.Debug);
  Alcotest.(check int) "error=4" 4 (Vlog.priority_to_int Vlog.Error);
  (match Vlog.priority_of_int 0 with Error _ -> () | Ok _ -> Alcotest.fail "0 valid");
  (match Vlog.priority_of_int 5 with Error _ -> () | Ok _ -> Alcotest.fail "5 valid");
  Alcotest.(check bool) "3=warn" true (Vlog.priority_of_int 3 = Ok Vlog.Warn)

let test_filter_overrides_level () =
  (* Global error, but util.object filtered down to debug: only that
     module's debug messages pass. *)
  let t =
    Vlog.create ~level:Vlog.Error
      ~filters:[ { Vlog.match_string = "util.object"; max_verbosity = Vlog.Debug } ]
      ~outputs:[ file_out "/log" ] ()
  in
  Vlog.log t ~module_:"util.object" Vlog.Debug "wanted";
  Vlog.log t ~module_:"rpc" Vlog.Debug "unwanted";
  Vlog.log t ~module_:"rpc" Vlog.Error "also wanted";
  Alcotest.(check int) "two lines" 2 (count_lines (Vlog.file_contents t "/log"))

let test_filter_suppresses () =
  (* Global debug, but the chatty module filtered up to error. *)
  let t =
    Vlog.create ~level:Vlog.Debug
      ~filters:[ { Vlog.match_string = "rpc"; max_verbosity = Vlog.Error } ]
      ~outputs:[ file_out "/log" ] ()
  in
  Vlog.log t ~module_:"rpc" Vlog.Info "dropped";
  Vlog.log t ~module_:"other" Vlog.Info "kept";
  Alcotest.(check int) "one line" 1 (count_lines (Vlog.file_contents t "/log"))

let test_would_log () =
  (* The cheap pre-flight gate must agree with what [log] actually
     delivers, across levels, filters and the no-outputs case. *)
  let t = Vlog.create ~level:Vlog.Warn ~outputs:[ file_out "/log" ] () in
  Alcotest.(check bool) "below threshold" false
    (Vlog.would_log t ~module_:"m" Vlog.Debug);
  Alcotest.(check bool) "at threshold" true
    (Vlog.would_log t ~module_:"m" Vlog.Warn);
  Alcotest.(check bool) "above threshold" true
    (Vlog.would_log t ~module_:"m" Vlog.Error);
  let filtered =
    Vlog.create ~level:Vlog.Error
      ~filters:[ { Vlog.match_string = "rpc"; max_verbosity = Vlog.Debug } ]
      ~outputs:[ file_out "/log" ] ()
  in
  Alcotest.(check bool) "filter raises verbosity" true
    (Vlog.would_log filtered ~module_:"rpc.server" Vlog.Debug);
  Alcotest.(check bool) "other modules stay gated" false
    (Vlog.would_log filtered ~module_:"core" Vlog.Debug);
  let silent = Vlog.create ~level:Vlog.Debug ~outputs:[] () in
  Alcotest.(check bool) "no outputs, no work" false
    (Vlog.would_log silent ~module_:"m" Vlog.Error);
  (* Redefinition is visible to the gate immediately. *)
  Vlog.set_level t Vlog.Debug;
  Alcotest.(check bool) "redefinition applies" true
    (Vlog.would_log t ~module_:"m" Vlog.Debug)

let test_longest_filter_wins () =
  let t =
    Vlog.create ~level:Vlog.Error
      ~filters:
        [
          { Vlog.match_string = "util"; max_verbosity = Vlog.Error };
          { Vlog.match_string = "util.object"; max_verbosity = Vlog.Debug };
        ]
      ~outputs:[ file_out "/log" ] ()
  in
  Vlog.log t ~module_:"util.object" Vlog.Debug "most specific wins";
  Alcotest.(check int) "passed" 1 (count_lines (Vlog.file_contents t "/log"))

let test_filter_is_substring_match () =
  let t =
    Vlog.create ~level:Vlog.Error
      ~filters:[ { Vlog.match_string = "object"; max_verbosity = Vlog.Debug } ]
      ~outputs:[ file_out "/log" ] ()
  in
  Vlog.log t ~module_:"util.object" Vlog.Debug "matched in the middle";
  Alcotest.(check int) "passed" 1 (count_lines (Vlog.file_contents t "/log"))

let test_output_levels () =
  (* Outputs each apply their own threshold. *)
  let t =
    Vlog.create ~level:Vlog.Debug
      ~outputs:
        [
          { Vlog.min_priority = Vlog.Debug; sink = Vlog.File "/all" };
          { Vlog.min_priority = Vlog.Warn; sink = Vlog.File "/warnings" };
        ]
      ()
  in
  Vlog.log t ~module_:"m" Vlog.Debug "d";
  Vlog.log t ~module_:"m" Vlog.Warn "w";
  Vlog.log t ~module_:"m" Vlog.Error "e";
  Alcotest.(check int) "all sink" 3 (count_lines (Vlog.file_contents t "/all"));
  Alcotest.(check int) "warn sink" 2 (count_lines (Vlog.file_contents t "/warnings"))

let test_syslog_and_journald () =
  let t =
    Vlog.create ~level:Vlog.Debug
      ~outputs:
        [
          { Vlog.min_priority = Vlog.Debug; sink = Vlog.Syslog "ovirtd" };
          { Vlog.min_priority = Vlog.Debug; sink = Vlog.Journald };
        ]
      ()
  in
  Vlog.log t ~module_:"m" Vlog.Info "hello";
  (match Vlog.syslog_contents t with
   | [ line ] ->
     Alcotest.(check bool) "ident prepended" true
       (String.length line > 7 && String.sub line 0 7 = "ovirtd:")
   | l -> Alcotest.failf "expected 1 syslog line, got %d" (List.length l));
  Alcotest.(check int) "journald line" 1 (List.length (Vlog.journal_contents t))

let test_counters () =
  let t = Vlog.create ~level:Vlog.Warn ~outputs:[ null_out Vlog.Debug ] () in
  Vlog.log t ~module_:"m" Vlog.Debug "dropped";
  Vlog.log t ~module_:"m" Vlog.Error "emitted";
  Alcotest.(check int) "emitted" 1 (Vlog.emitted_count t);
  Alcotest.(check int) "dropped" 1 (Vlog.dropped_count t);
  Vlog.reset_counters t;
  Alcotest.(check int) "reset" 0 (Vlog.emitted_count t)

let test_message_format () =
  let t = Vlog.create ~level:Vlog.Debug ~outputs:[ file_out "/log" ] () in
  Vlog.logf t ~module_:"qemu.monitor" Vlog.Warn "vm %s did %d things" "x" 3;
  let line = Vlog.file_contents t "/log" in
  let has_substring needle =
    let n = String.length needle and h = String.length line in
    let rec go i = i + n <= h && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "level name present" true (has_substring "warning");
  Alcotest.(check bool) "module present" true (has_substring "qemu.monitor");
  Alcotest.(check bool) "message formatted" true (has_substring "vm x did 3 things")

(* --- textual syntax --------------------------------------------------- *)

let test_parse_filters_valid () =
  let filters = sok (Vlog.parse_filters "3:util.object 4:rpc") in
  Alcotest.(check int) "two filters" 2 (List.length filters);
  let f = List.hd filters in
  Alcotest.(check string) "match string" "util.object" f.Vlog.match_string;
  Alcotest.(check bool) "level" true (f.Vlog.max_verbosity = Vlog.Warn);
  Alcotest.(check (list string)) "empty set" []
    (List.map (fun f -> f.Vlog.match_string) (sok (Vlog.parse_filters "")));
  Alcotest.(check string) "roundtrip" "3:util.object 4:rpc"
    (Vlog.format_filters filters)

let test_parse_filters_invalid () =
  List.iter
    (fun s ->
      match Vlog.parse_filters s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted filter %S" s)
    [ "noseparator"; "x:mod"; "0:mod"; "5:mod"; "3:"; "3"; "3:a 9:b" ]

let test_parse_outputs_valid () =
  let outputs =
    sok (Vlog.parse_outputs "1:file:/var/log/d.log 3:syslog:ovirtd 2:stderr 4:journald")
  in
  Alcotest.(check int) "four outputs" 4 (List.length outputs);
  (match List.hd outputs with
   | { Vlog.min_priority = Vlog.Debug; sink = Vlog.File "/var/log/d.log" } -> ()
   | _ -> Alcotest.fail "file output mis-parsed");
  Alcotest.(check string) "roundtrip"
    "1:file:/var/log/d.log 3:syslog:ovirtd 2:stderr 4:journald"
    (Vlog.format_outputs outputs)

let test_parse_outputs_invalid () =
  List.iter
    (fun s ->
      match Vlog.parse_outputs s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted output %S" s)
    [
      "1:bogus"; "1:file"; "1:file:relative/path"; "1:syslog"; "1:syslog:";
      "0:stderr"; "9:stderr"; "1:stderr:extra"; "1:journald:extra"; "stderr";
      "x:stderr";
    ]

(* --- runtime redefinition --------------------------------------------- *)

let test_runtime_redefinition () =
  let t = Vlog.create ~level:Vlog.Error ~outputs:[ file_out "/log" ] () in
  Vlog.log t ~module_:"m" Vlog.Info "before";
  Vlog.set_level t Vlog.Info;
  Vlog.log t ~module_:"m" Vlog.Info "after";
  Alcotest.(check int) "only post-change line" 1
    (count_lines (Vlog.file_contents t "/log"));
  Vlog.define_filters t
    [ { Vlog.match_string = "m"; max_verbosity = Vlog.Error } ];
  Vlog.log t ~module_:"m" Vlog.Info "filtered now";
  Alcotest.(check int) "filter applies immediately" 1
    (count_lines (Vlog.file_contents t "/log"))

let test_concurrent_redefinition_consistency () =
  (* Loggers racing with redefinition must see either the old or the new
     settings — never a crash or a torn mix.  We check no exception and
     that the final state is one of the two defined sets. *)
  let t = Vlog.create ~level:Vlog.Debug ~outputs:[ null_out Vlog.Debug ] () in
  let stop = ref false in
  let loggers =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            while not !stop do
              Vlog.logf t ~module_:"racer" Vlog.Info "thread %d" i
            done)
          ())
  in
  let set_a = [ { Vlog.match_string = "racer"; max_verbosity = Vlog.Error } ] in
  let set_b = [ { Vlog.match_string = "other"; max_verbosity = Vlog.Debug } ] in
  for _ = 1 to 500 do
    Vlog.define_filters t set_a;
    Vlog.define_filters t set_b
  done;
  stop := true;
  List.iter Thread.join loggers;
  let final = Vlog.get_filters t in
  Alcotest.(check bool) "final state is a defined set" true
    (final = set_a || final = set_b)

let prop_filter_format_roundtrip =
  let gen =
    QCheck.make
      QCheck.Gen.(
        list_size (int_bound 5)
          (pair (int_range 1 4) (small_string ~gen:(char_range 'a' 'z'))))
  in
  qcheck_case "filter format/parse roundtrip" gen (fun items ->
      let filters =
        List.filter_map
          (fun (level, name) ->
            if name = "" then None
            else
              match Vlog.priority_of_int level with
              | Ok p -> Some { Vlog.match_string = name; max_verbosity = p }
              | Error _ -> None)
          items
      in
      match Vlog.parse_filters (Vlog.format_filters filters) with
      | Ok parsed -> parsed = filters
      | Error _ -> false)

let () =
  Alcotest.run "vlog"
    [
      ( "levels",
        [
          quick "inclusive hierarchy" test_level_hierarchy;
          quick "numeric representation" test_priority_ints;
        ] );
      ( "filters",
        [
          quick "filter raises verbosity for one module" test_filter_overrides_level;
          quick "would_log agrees with log" test_would_log;
          quick "filter suppresses a chatty module" test_filter_suppresses;
          quick "longest match wins" test_longest_filter_wins;
          quick "substring semantics" test_filter_is_substring_match;
        ] );
      ( "outputs",
        [
          quick "per-output thresholds" test_output_levels;
          quick "syslog ident and journald" test_syslog_and_journald;
          quick "counters" test_counters;
          quick "message format" test_message_format;
        ] );
      ( "syntax",
        [
          quick "parse filters (valid)" test_parse_filters_valid;
          quick "parse filters (invalid)" test_parse_filters_invalid;
          quick "parse outputs (valid)" test_parse_outputs_valid;
          quick "parse outputs (invalid)" test_parse_outputs_invalid;
          prop_filter_format_roundtrip;
        ] );
      ( "runtime",
        [
          quick "redefinition applies immediately" test_runtime_redefinition;
          quick "concurrent redefinition is atomic" test_concurrent_redefinition_consistency;
        ] );
    ]
