(* Crash-safe persistence and restart recovery: the journal's framing
   (roundtrip, torn tails, checksum corruption, write-limit injection),
   a crash-point sweep proving any cut of the journal replays to a
   prefix-consistent store, and end-to-end manager crashes — running
   guests re-adopted untouched (qemu pids preserved), autostart honored,
   divergences reported as events, keepalive answered mid-replay, and
   the autostart/per-connection-stats plumbing around it all. *)

open Testutil
module Media = Persist.Media
module Journal = Persist.Journal
module Domstore = Drivers.Domstore
module Qemu_proc = Hvsim.Qemu_proc
module Hostinfo = Hvsim.Hostinfo
module Vm_config = Vmm.Vm_config
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Events = Ovirt.Events
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "recd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

let define_domain conn ?(os = Vm_config.Hvm) ?(virt_type = "test") name =
  let cfg = Vm_config.make ~os ~memory_kib:(8 * 1024) name in
  vok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type cfg))

let events_of conn lifecycle =
  let ops = vok (Connect.ops conn) in
  Events.history ops.Ovirt.Driver.events
  |> List.filter (fun ev -> ev.Events.lifecycle = lifecycle)
  |> List.map (fun ev -> ev.Events.domain_name)

(* --- journal framing ----------------------------------------------------- *)

let test_journal_roundtrip () =
  let path = fresh_name "journal" in
  let j, replay = Journal.open_ path in
  Alcotest.(check (list string)) "fresh journal empty" [] replay.Journal.rp_records;
  let records = [ "alpha"; ""; "third record with spaces"; String.make 300 'x' ] in
  List.iter (Journal.append j) records;
  let _, replay = Journal.open_ path in
  Alcotest.(check (list string)) "records replayed" records replay.Journal.rp_records;
  Alcotest.(check int) "no torn tail" 0 replay.Journal.rp_torn_bytes

let test_journal_torn_tail () =
  let path = fresh_name "journal" in
  let j, _ = Journal.open_ path in
  List.iter (Journal.append j) [ "one"; "two"; "three" ];
  let full = Media.size path in
  Media.truncate path (full - 2);
  let _, replay = Journal.open_ path in
  Alcotest.(check (list string)) "prefix survives" [ "one"; "two" ]
    replay.Journal.rp_records;
  Alcotest.(check bool) "torn bytes reported" true (replay.Journal.rp_torn_bytes > 0);
  (* The torn tail is truncated on open: a second replay is clean. *)
  let _, replay = Journal.open_ path in
  Alcotest.(check int) "tail gone after truncation" 0 replay.Journal.rp_torn_bytes

let test_journal_checksum_corruption () =
  let path = fresh_name "journal" in
  let j, _ = Journal.open_ path in
  List.iter (Journal.append j) [ "first"; "second"; "third" ];
  let img = Option.get (Media.read path) in
  (* Flip a byte inside the second record's payload: the frame length is
     still valid, so only the checksum can catch it. *)
  let pos = String.length (Journal.encode_record "first") + 8 + 2 in
  let corrupted =
    String.mapi (fun i c -> if i = pos then Char.chr (Char.code c lxor 0xff) else c) img
  in
  Media.write path corrupted;
  let _, replay = Journal.open_ path in
  Alcotest.(check (list string))
    "replay stops before the corrupt record" [ "first" ] replay.Journal.rp_records;
  Alcotest.(check bool) "corrupt suffix counted as torn" true
    (replay.Journal.rp_torn_bytes > 0)

let test_journal_write_limit () =
  let path = fresh_name "journal" in
  let j, _ = Journal.open_ path in
  Journal.append j "durable";
  let cut = Media.size path + 5 in
  Media.set_write_limit path (Some cut);
  Journal.append j "torn away";
  Media.set_write_limit path None;
  Alcotest.(check int) "append clipped at the limit" cut (Media.size path);
  let _, replay = Journal.open_ path in
  Alcotest.(check (list string)) "only the durable record" [ "durable" ]
    replay.Journal.rp_records;
  Alcotest.(check int) "clipped bytes truncated" 5 replay.Journal.rp_torn_bytes

(* --- crash-point sweep over the domstore journal ------------------------- *)

(* Each op appends exactly one journal record, so cutting the image at
   record boundary [k] must replay to exactly the state of applying the
   first [k] ops — and a mid-record cut to the state at the enclosing
   boundary.  This is the prefix-consistency invariant: no crash point
   yields a state the manager never passed through. *)
let sweep_ops () =
  let cfg name = Vm_config.make ~memory_kib:(8 * 1024) name in
  let a = cfg "sweep-a" and b = cfg "sweep-b" and c = cfg "sweep-c" in
  [
    (fun st -> vok (Domstore.define st a));
    (fun st -> vok (Domstore.define st b));
    (fun st -> Domstore.note_started st "sweep-a");
    (fun st -> vok (Domstore.set_autostart st "sweep-b" true));
    (fun st -> vok (Domstore.define st c));
    (fun st -> Domstore.note_stopped st "sweep-a");
    (fun st -> vok (Domstore.undefine st "sweep-c"));
    (fun st -> vok (Domstore.define st c));
    (fun st -> vok (Domstore.set_autostart st "sweep-b" false));
    (fun st -> Domstore.note_started st "sweep-b");
  ]

let entry_sigs store =
  List.map
    (fun (name, cfg, autostart, running) ->
      Printf.sprintf "%s/%s/%b/%b" name
        (Vmm.Uuid.to_string cfg.Vm_config.uuid)
        autostart running)
    (Domstore.entries store)

let expected_after ops k =
  let st = Domstore.create () in
  ignore (Domstore.attach st ~path:(fresh_name "sweep-model"));
  List.iteri (fun i op -> if i < k then op st) ops;
  entry_sigs st

let attach_cut img cut =
  let path = fresh_name "sweep-cut" in
  Media.write path (String.sub img 0 cut);
  let st = Domstore.create () in
  let rc = Domstore.attach st ~path in
  (st, rc)

let check_no_dup_uuids st =
  let uuids =
    List.map
      (fun (_, cfg, _, _) -> Vmm.Uuid.to_string cfg.Vm_config.uuid)
      (Domstore.entries st)
  in
  Alcotest.(check int)
    "no duplicate uuids" (List.length uuids)
    (List.length (List.sort_uniq compare uuids))

let test_crash_point_sweep () =
  let ops = sweep_ops () in
  let path = fresh_name "sweep" in
  let st = Domstore.create () in
  ignore (Domstore.attach st ~path);
  List.iter (fun op -> op st) ops;
  let img = Option.get (Media.read path) in
  let _, replay = Journal.open_ path in
  Alcotest.(check int) "one record per op" (List.length ops)
    (List.length replay.Journal.rp_records);
  (* Record boundary offsets, boundary.(k) = bytes of the first k records. *)
  let boundary = Array.make (List.length ops + 1) 0 in
  List.iteri
    (fun i r ->
      boundary.(i + 1) <- boundary.(i) + String.length (Journal.encode_record r))
    replay.Journal.rp_records;
  Alcotest.(check int) "boundaries span the image" (String.length img)
    boundary.(List.length ops);
  for k = 0 to List.length ops do
    let cut_st, rc = attach_cut img boundary.(k) in
    Alcotest.(check (list string))
      (Printf.sprintf "boundary cut after record %d" k)
      (expected_after ops k) (entry_sigs cut_st);
    Alcotest.(check int) "clean cut has no torn bytes" 0 rc.Domstore.rc_torn_bytes;
    check_no_dup_uuids cut_st
  done;
  for k = 0 to List.length ops - 1 do
    let len = boundary.(k + 1) - boundary.(k) in
    (* Several cut points inside record k+1, including one byte short. *)
    List.iter
      (fun delta ->
        if delta >= 1 && delta < len then begin
          let cut_st, rc = attach_cut img (boundary.(k) + delta) in
          Alcotest.(check (list string))
            (Printf.sprintf "mid-record cut in record %d (+%d)" (k + 1) delta)
            (expected_after ops k) (entry_sigs cut_st);
          Alcotest.(check int)
            (Printf.sprintf "torn bytes at +%d" delta)
            delta rc.Domstore.rc_torn_bytes;
          check_no_dup_uuids cut_st
        end)
      [ 1; 3; len / 2; len - 1 ]
  done

let test_compaction () =
  let path = fresh_name "compact" in
  let st = Domstore.create () in
  ignore (Domstore.attach st ~path);
  let keeper = Vm_config.make "keeper" in
  vok (Domstore.define st keeper);
  let churn = Vm_config.make "churn" in
  for _ = 1 to 30 do
    vok (Domstore.define st churn);
    vok (Domstore.undefine st "churn")
  done;
  (* Replay is O(live state), not O(history): the journal was compacted
     to a snapshot well below the 61 appended records. *)
  let st2 = Domstore.create () in
  let rc = Domstore.attach st2 ~path in
  Alcotest.(check bool) "journal compacted" true (rc.Domstore.rc_replayed < 10);
  Alcotest.(check (list string)) "state preserved" [ "keeper" ] (Domstore.names st2)

(* --- crash-point sweep over the reconcile plan journal ------------------- *)

(* The reconciler journals a plan before applying it and checkpoints
   per-op.  Kill it mid-apply (two of four ops done), then cut the
   surviving journal at every record boundary and at points inside each
   record: whatever prefix a crash leaves, the next incarnation must
   converge the fleet with every domain's side effect happening exactly
   once — resumed ops whose postcondition already holds are skipped,
   never repeated. *)
let test_reconcile_plan_sweep () =
  let uri = "test://plansweep/" in
  let doms = [ "ps-a"; "ps-b"; "ps-c"; "ps-d" ] in
  let world = Hashtbl.create 8 in
  let applies = Hashtbl.create 8 in
  let io =
    {
      Reconcile.io_actual =
        (fun _ ->
          Ok (Hashtbl.fold (fun n st acc -> (n, st) :: acc) world []));
      io_state = (fun _ name -> Ok (Hashtbl.find_opt world name));
      io_apply =
        (fun _ op ->
          let n = op.Reconcile.op_name in
          Hashtbl.replace applies n
            (1 + Option.value ~default:0 (Hashtbl.find_opt applies n));
          Hashtbl.replace world n Vmm.Vm_state.Running;
          Ok ());
      io_log = (fun _ -> ());
    }
  in
  let config =
    {
      Reconcile.default_config with
      Reconcile.rcfg_parallel = 1;
      rcfg_backoff_base_s = 0.;
      rcfg_backoff_cap_s = 0.;
      rcfg_compact_factor = 1000;
      rcfg_compact_slack = 1000;
    }
  in
  let reset_world () =
    Hashtbl.reset world;
    Hashtbl.reset applies;
    List.iter (fun n -> Hashtbl.replace world n Vmm.Vm_state.Shutoff) doms
  in
  reset_world ();
  let path = fresh_name "plansweep" in
  let t = Reconcile.create ~journal_path:path ~io ~config () in
  let running_policy =
    { Ovirt.Dompolicy.default with Ovirt.Dompolicy.run_state = Ovirt.Dompolicy.Rs_running }
  in
  List.iter (fun n -> Reconcile.set_policy t ~uri ~name:n running_policy) doms;
  (* Kill the pass after the second side effect lands, before its
     checkpoint can be written: the nastiest window. *)
  let hits = ref 0 in
  Reconcile.crash_hook :=
    (fun site ->
      if site = "post_apply" then begin
        incr hits;
        if !hits = 2 then failwith "injected crash"
      end);
  (match Reconcile.converge_now t with
   | _ -> Alcotest.fail "injected crash did not abort the pass"
   | exception Failure _ -> Reconcile.crash_hook := fun _ -> ());
  Alcotest.(check int) "two side effects landed before the kill" 2
    (Hashtbl.length applies);
  let crash_world = Hashtbl.copy world in
  let crash_applies = Hashtbl.copy applies in
  let img = Option.get (Media.read path) in
  let _, replay = Journal.open_ path in
  let boundary = Array.make (List.length replay.Journal.rp_records + 1) 0 in
  List.iteri
    (fun i r ->
      boundary.(i + 1) <- boundary.(i) + String.length (Journal.encode_record r))
    replay.Journal.rp_records;
  let nrec = List.length replay.Journal.rp_records in
  Alcotest.(check int) "boundaries span the image" (String.length img) boundary.(nrec);
  let check_cut label cut =
    (* Restart from the crash-time world against this journal prefix;
       each cut is its own independent timeline. *)
    Hashtbl.reset world;
    Hashtbl.iter (Hashtbl.replace world) crash_world;
    Hashtbl.reset applies;
    Hashtbl.iter (Hashtbl.replace applies) crash_applies;
    let cut_path = fresh_name "plansweep-cut" in
    Media.write cut_path (String.sub img 0 cut);
    let t2 = Reconcile.create ~journal_path:cut_path ~io ~config () in
    let s = Reconcile.converge_now t2 in
    Alcotest.(check int) (label ^ ": no op failed") 0 s.Reconcile.sum_ops_failed;
    (* Exactly-once: no domain's lifecycle op ever ran twice, whether it
       ran before the crash or after the resume. *)
    Hashtbl.iter
      (fun n count ->
        if count > 1 then
          Alcotest.failf "%s: duplicate side effect on %s (%d)" label n count)
      applies;
    (* Every spec the journal prefix preserved converges. *)
    let s = Reconcile.converge_now t2 in
    Alcotest.(check int)
      (label ^ ": every surviving spec converged")
      s.Reconcile.sum_specs s.Reconcile.sum_converged
  in
  for k = 0 to nrec do
    check_cut (Printf.sprintf "boundary cut after record %d" k) boundary.(k)
  done;
  for k = 0 to nrec - 1 do
    let len = boundary.(k + 1) - boundary.(k) in
    List.iter
      (fun delta ->
        if delta >= 1 && delta < len then
          check_cut
            (Printf.sprintf "mid-record cut in record %d (+%d)" (k + 1) delta)
            (boundary.(k) + delta))
      [ 1; 3; len / 2; len - 1 ]
  done;
  (* The untouched journal resumes the interrupted plan directly. *)
  Hashtbl.reset world;
  Hashtbl.iter (Hashtbl.replace world) crash_world;
  Hashtbl.reset applies;
  Hashtbl.iter (Hashtbl.replace applies) crash_applies;
  let t3 = Reconcile.create ~journal_path:path ~io ~config () in
  let s = Reconcile.converge_now t3 in
  Alcotest.(check bool) "full journal: plan resumed" true s.Reconcile.sum_resumed;
  Hashtbl.iter
    (fun n count ->
      Alcotest.(check int) (Printf.sprintf "exactly one side effect on %s" n) 1 count)
    applies;
  Alcotest.(check int) "whole fleet running" (List.length doms)
    (Hashtbl.fold
       (fun _ st acc -> if st = Vmm.Vm_state.Running then acc + 1 else acc)
       world 0)

(* --- end-to-end: test driver --------------------------------------------- *)

let test_crash_recovery_test_driver () =
  let uri = "test://" ^ fresh_name "recnode" ^ "/" in
  let conn = vok (Connect.open_uri uri) in
  let running = define_domain conn "rec-running" in
  vok (Domain.create running);
  let paused = define_domain conn "rec-paused" in
  vok (Domain.create paused);
  vok (Domain.suspend paused);
  let auto = define_domain conn "rec-auto" in
  vok (Domain.set_autostart auto true);
  let cold = define_domain conn "rec-cold" in
  ignore cold;
  Connect.close conn;
  Ovirt.crash_managers ();
  (* The restarted manager replays the journal and reconciles with the
     simulated hypervisor state that survived the crash. *)
  let conn = vok (Connect.open_uri uri) in
  let state name =
    let info = vok (Domain.get_info (vok (Domain.lookup_by_name conn name))) in
    Vmm.Vm_state.state_name info.Ovirt.Driver.di_state
  in
  Alcotest.(check string) "running guest re-adopted" "running" (state "rec-running");
  Alcotest.(check string) "paused guest adopted with its state" "paused"
    (state "rec-paused");
  Alcotest.(check string) "autostart domain started" "running" (state "rec-auto");
  Alcotest.(check string) "plain inactive domain left alone" "shut off"
    (state "rec-cold");
  Alcotest.(check bool) "autostart flag replayed" true
    (vok (Domain.get_autostart (vok (Domain.lookup_by_name conn "rec-auto"))));
  let adopted = events_of conn Events.Ev_adopted in
  Alcotest.(check bool) "adoption events emitted" true
    (List.mem "rec-running" adopted && List.mem "rec-paused" adopted);
  Alcotest.(check (list string)) "no divergences" [] (events_of conn Events.Ev_diverged);
  Connect.close conn

(* --- end-to-end: qemu (processes survive, divergences) ------------------- *)

let test_crash_recovery_qemu () =
  let node = fresh_name "recq" in
  let uri = "qemu://" ^ node ^ "/system" in
  let conn = vok (Connect.open_uri uri) in
  let keeper = define_domain conn ~virt_type:"kvm" "q-keeper" in
  vok (Domain.create keeper);
  let victim = define_domain conn ~virt_type:"kvm" "q-victim" in
  vok (Domain.create victim);
  let pid_of conn name =
    let ops = vok (Connect.ops conn) in
    (vok (ops.Ovirt.Driver.lookup_by_name name)).Ovirt.Driver.dom_id
  in
  let keeper_pid = pid_of conn "q-keeper" in
  Alcotest.(check bool) "keeper has a pid" true (keeper_pid <> None);
  Connect.close conn;
  Ovirt.crash_managers ();
  (* While the manager is down: the victim dies behind its back, and an
     unknown emulator process appears on the host. *)
  (match List.assoc_opt "q-victim" (Qemu_proc.running_on node) with
   | Some proc -> ignore (Qemu_proc.qmp proc ~cmd:"quit" ())
   | None -> Alcotest.fail "victim process should have survived the crash");
  let ghost_cfg = Vm_config.make ~memory_kib:(8 * 1024) "q-ghost" in
  (match
     Qemu_proc.spawn (Hostinfo.shared node)
       ~argv:(Drivers.Drv_qemu.proc_argv ghost_cfg)
       ghost_cfg
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "ghost spawn failed: %s" e);
  let conn = vok (Connect.open_uri uri) in
  (* Same process, same pid: the keeper was re-adopted, not restarted. *)
  Alcotest.(check bool) "keeper pid preserved" true (pid_of conn "q-keeper" = keeper_pid);
  let state name =
    let info = vok (Domain.get_info (vok (Domain.lookup_by_name conn name))) in
    Vmm.Vm_state.state_name info.Ovirt.Driver.di_state
  in
  Alcotest.(check string) "keeper still running" "running" (state "q-keeper");
  Alcotest.(check string) "victim reported shut off" "shut off" (state "q-victim");
  Alcotest.(check (list string)) "keeper adopted" [ "q-keeper" ]
    (events_of conn Events.Ev_adopted);
  let diverged = List.sort compare (events_of conn Events.Ev_diverged) in
  Alcotest.(check (list string)) "victim and ghost diverged" [ "q-ghost"; "q-victim" ]
    diverged;
  (* The ghost was reported, not repaired: its process is still alive
     and it is still not a defined domain. *)
  Alcotest.(check bool) "ghost process left alone" true
    (List.mem_assoc "q-ghost" (Qemu_proc.running_on node));
  expect_verr Ovirt.Verror.No_domain (Domain.lookup_by_name conn "q-ghost");
  (* The balloon path works against the adopted process (monitor alive). *)
  vok (Domain.set_memory (vok (Domain.lookup_by_name conn "q-keeper")) (4 * 1024));
  Connect.close conn

(* --- keepalive answered while recovery replay is in progress ------------- *)

let test_keepalive_during_replay () =
  with_daemon (fun dname daemon ->
      let node = fresh_name "karec" in
      let plain = Printf.sprintf "test+unix://%s/?daemon=%s" node dname in
      let conn = vok (Connect.open_uri plain) in
      for i = 1 to 12 do
        let dom = define_domain conn (Printf.sprintf "ka-dom-%02d" i) in
        if i mod 2 = 0 then vok (Domain.create dom)
      done;
      Connect.close conn;
      Daemon.crash daemon;
      let daemon2 = Daemon.start ~name:dname ~config:quiet_config () in
      Fun.protect
        ~finally:(fun () ->
          Journal.replay_throttle := 0.0;
          Daemon.stop daemon2)
        (fun () ->
          (* ~18 records at 50 ms each: replay takes ~0.9 s, an order of
             magnitude past the 0.05 s x 3 keepalive death window.  The
             open only survives if pings are answered during replay. *)
          Journal.replay_throttle := 0.05;
          let kuri =
            Printf.sprintf "test+unix://%s/?daemon=%s&keepalive=0.05&keepalive_count=3"
              node dname
          in
          let t0 = Unix.gettimeofday () in
          let conn = vok (Connect.open_uri kuri) in
          Alcotest.(check bool) "replay was actually slow" true
            (Unix.gettimeofday () -. t0 > 0.3);
          Journal.replay_throttle := 0.0;
          Alcotest.(check bool) "definitions recovered" true
            (List.length (vok (Connect.list_defined_domains conn))
             + List.length (vok (Connect.list_domains conn))
             >= 12);
          Connect.close conn))

(* --- autostart plumbing: local errors and the remote protocol ------------ *)

let test_autostart_local () =
  let conn = fresh_test_conn () in
  let dom = define_domain conn "auto-local" in
  Alcotest.(check bool) "defaults to false" false (vok (Domain.get_autostart dom));
  vok (Domain.set_autostart dom true);
  Alcotest.(check bool) "set sticks" true (vok (Domain.get_autostart dom));
  vok (Domain.set_autostart dom false);
  Alcotest.(check bool) "cleared" false (vok (Domain.get_autostart dom));
  vok (Domain.undefine dom);
  expect_verr Ovirt.Verror.No_domain (Domain.set_autostart dom true);
  expect_verr Ovirt.Verror.No_domain (Domain.get_autostart dom);
  Connect.close conn

let test_autostart_remote () =
  with_daemon (fun dname _daemon ->
      let uri =
        Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "autorem") dname
      in
      let conn = vok (Connect.open_uri uri) in
      let dom = define_domain conn "auto-remote" in
      vok (Domain.set_autostart dom true);
      Alcotest.(check bool) "flag roundtrips over RPC" true
        (vok (Domain.get_autostart dom));
      vok (Domain.set_autostart dom false);
      Alcotest.(check bool) "disable roundtrips" false (vok (Domain.get_autostart dom));
      vok (Domain.undefine dom);
      expect_verr Ovirt.Verror.No_domain (Domain.get_autostart dom);
      expect_verr Ovirt.Verror.No_domain (Domain.set_autostart dom true);
      Connect.close conn)

(* --- per-connection reconnect statistics --------------------------------- *)

let test_per_connection_stats () =
  with_daemon (fun dname daemon ->
      let uri node =
        Printf.sprintf
          "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005&reconnect_max_delay=0.05"
          node dname
      in
      Drv_remote.reset_stats ();
      let c1 = vok (Connect.open_uri (uri (fresh_name "stats"))) in
      let c2 = vok (Connect.open_uri (uri (fresh_name "stats"))) in
      let ops1 = vok (Connect.ops c1) and ops2 = vok (Connect.ops c2) in
      Daemon.stop daemon;
      let daemon2 = Daemon.start ~name:dname ~config:quiet_config () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop daemon2)
        (fun () ->
          (* Only c1 exercises its connection: only its counters move. *)
          let _ = vok (Connect.hostname c1) in
          let s1 = Option.get (Drv_remote.conn_stats ops1) in
          let s2 = Option.get (Drv_remote.conn_stats ops2) in
          Alcotest.(check bool) "c1 reconnected" true (s1.Drv_remote.st_reconnects >= 1);
          Alcotest.(check int) "c2 untouched" 0 s2.Drv_remote.st_reconnects;
          let _ = vok (Connect.hostname c2) in
          let s2 = Option.get (Drv_remote.conn_stats ops2) in
          Alcotest.(check bool) "c2 reconnected on use" true
            (s2.Drv_remote.st_reconnects >= 1);
          let agg = Drv_remote.stats () in
          Alcotest.(check bool) "aggregate sums connections" true
            (agg.Drv_remote.st_reconnects
             >= s1.Drv_remote.st_reconnects + s2.Drv_remote.st_reconnects);
          (* A non-remote connection has no counters. *)
          let local = fresh_test_conn () in
          Alcotest.(check bool) "local conn has no stats" true
            (Drv_remote.conn_stats (vok (Connect.ops local)) = None);
          Connect.close local;
          Connect.close c1;
          Connect.close c2))

let () =
  Alcotest.run "recovery"
    [
      ( "journal",
        [
          quick "roundtrip" test_journal_roundtrip;
          quick "torn-tail" test_journal_torn_tail;
          quick "checksum-corruption" test_journal_checksum_corruption;
          quick "write-limit-injection" test_journal_write_limit;
        ] );
      ( "sweep",
        [
          quick "crash-point-sweep" test_crash_point_sweep;
          quick "compaction" test_compaction;
          quick "reconcile-plan-sweep" test_reconcile_plan_sweep;
        ] );
      ( "restart",
        [
          quick "test-driver-recovery" test_crash_recovery_test_driver;
          quick "qemu-adoption-and-divergence" test_crash_recovery_qemu;
          quick "keepalive-during-replay" test_keepalive_during_replay;
        ] );
      ( "autostart",
        [
          quick "local" test_autostart_local;
          quick "remote" test_autostart_remote;
        ] );
      ( "stats", [ quick "per-connection" test_per_connection_stats ] );
    ]
