(* Federated control plane: v1.7 wire numbering and codecs, consistent-
   hash placement, the member health state machine and the single shared
   prober, degraded scatter-gather under member death (chaos), cross-
   shard batch refusal, journaled cross-daemon migration end-to-end and
   a crash-point sweep across every journaled boundary, the admin
   fleet-status procedure, and (gated by OVIRT_FLEET_SUITE=1) a
   full-surface pass over a 3-member in-process fleet. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Events = Ovirt.Events
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Fleet = Ovirt.Fleet
module Admin = Ovirt.Admin_client
module Transport = Ovnet.Transport
module Rp = Protocol.Remote_protocol
module Ap = Protocol.Admin_protocol
module Vm_config = Vmm.Vm_config

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs =
      [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let dom_xml ?uuid name =
  Vmm.Domxml.to_xml ~virt_type:"test"
    (Vm_config.make ?uuid ~memory_kib:(8 * 1024) name)

(* A fleet member: its own daemon in front of its own test-driver node. *)
type memberd = {
  md_member : string;  (** name inside the fleet *)
  md_daemon : string;  (** daemon (socket) name *)
  md_uri : string;
  mutable md_handle : Ovdaemon.Daemon.t option;
}

let start_member tag =
  let dname = fresh_name ("fld-" ^ tag) in
  let node = fresh_name ("fln-" ^ tag) in
  let handle = Daemon.start ~name:dname ~config:quiet_config () in
  {
    md_member = tag;
    md_daemon = dname;
    md_uri = Printf.sprintf "test+unix://%s/?daemon=%s" node dname;
    md_handle = Some handle;
  }

let kill_member m =
  match m.md_handle with
  | Some h ->
    Daemon.stop h;
    m.md_handle <- None
  | None -> ()

let with_members tags f =
  let members = List.map start_member tags in
  Fun.protect
    ~finally:(fun () -> List.iter kill_member members)
    (fun () -> f members)

let fleet_of ?(slice = 1.0) members =
  Fleet.create
    ~name:(fresh_name "fleet")
    ~members:(List.map (fun m -> (m.md_member, m.md_uri)) members)
    ~shard_slice_s:slice ~probe_interval_s:0.05 ~probe_timeout_s:0.2
    ~down_threshold:3 ()

(* Open a member's node directly (through its daemon): seeding and
   inspecting shard-local state without the fleet in the way. *)
let member_conn m = vok (Connect.open_uri m.md_uri)

let seed_domain conn ?uuid ?(running = true) name =
  let dom = vok (Domain.define_xml conn (dom_xml ?uuid name)) in
  if running then vok (Domain.create dom);
  dom

let member_health t mname =
  let fs = Fleet.status t in
  match
    List.find_opt (fun m -> m.Driver.ms_name = mname) fs.Driver.fs_members
  with
  | Some m -> m.Driver.ms_health
  | None -> Alcotest.failf "member %s not in status" mname

(* --- wire numbering --------------------------------------------------- *)

let test_wire_numbering () =
  Alcotest.(check int) "fleet_list_all is 55" 55
    (Rp.proc_to_int Rp.Proc_fleet_list_all);
  Alcotest.(check int) "fleet_status is 56" 56
    (Rp.proc_to_int Rp.Proc_fleet_status);
  Alcotest.(check int) "fleet_migrate is 57" 57
    (Rp.proc_to_int Rp.Proc_fleet_migrate);
  (* The v1.6 numbers must not have moved. *)
  Alcotest.(check int) "event_resume still 53" 53
    (Rp.proc_to_int Rp.Proc_event_resume);
  List.iter
    (fun p -> Alcotest.(check int) "needs minor 7" 7 (Rp.proc_min_minor p))
    [ Rp.Proc_fleet_list_all; Rp.Proc_fleet_status; Rp.Proc_fleet_migrate ];
  Alcotest.(check bool) "listing is idempotent" true
    (Rp.is_idempotent Rp.Proc_fleet_list_all);
  Alcotest.(check bool) "status is idempotent" true
    (Rp.is_idempotent Rp.Proc_fleet_status);
  Alcotest.(check bool) "migrate is NOT idempotent" false
    (Rp.is_idempotent Rp.Proc_fleet_migrate);
  Alcotest.(check bool) "status is high-priority" true
    (Rp.is_high_priority Rp.Proc_fleet_status);
  Alcotest.(check bool) "listing is not high-priority" false
    (Rp.is_high_priority Rp.Proc_fleet_list_all);
  Alcotest.(check int) "admin fleet_status wire number" 22
    (Ap.proc_to_int Ap.Proc_daemon_fleet_status)

(* --- codecs ----------------------------------------------------------- *)

let test_codec_roundtrips () =
  (* Real records from a live node keep the codec honest. *)
  let conn = fresh_test_conn () in
  let _ = seed_domain conn "codec-a" in
  let _ = seed_domain conn ~running:false "codec-b" in
  let records = vok (Connect.list_all_domains conn) in
  let listing =
    Driver.
      {
        fl_records = records;
        fl_shard_errors =
          [
            {
              se_member = "m2";
              se_error = Verror.make Verror.No_connect "member down";
            };
            {
              se_member = "m7";
              se_error =
                Verror.make Verror.Operation_failed "deadline exceeded";
            };
          ];
        fl_members = 8;
      }
  in
  Alcotest.(check bool) "fleet_listing roundtrips" true
    (Rp.dec_fleet_listing (Rp.enc_fleet_listing listing) = listing);
  let fs =
    Driver.
      {
        fs_fleet = "prod";
        fs_members =
          [
            {
              ms_name = "a";
              ms_health = Mh_up;
              ms_consec_failures = 0;
              ms_probes = 41;
              ms_failures = 2;
              ms_domains = 1000;
            };
            {
              ms_name = "b";
              ms_health = Mh_degraded;
              ms_consec_failures = 1;
              ms_probes = 40;
              ms_failures = 9;
              ms_domains = -1;
            };
            {
              ms_name = "c";
              ms_health = Mh_down;
              ms_consec_failures = 12;
              ms_probes = 52;
              ms_failures = 12;
              ms_domains = 0;
            };
          ];
        fs_migrations_active = 1;
        fs_migrations_recovered = 2;
        fs_migrations_rolled_back = 3;
      }
  in
  Alcotest.(check bool) "fleet_status roundtrips" true
    (Rp.dec_fleet_status (Rp.enc_fleet_status fs) = fs);
  Alcotest.(check bool) "fleet_migrate roundtrips" true
    (Rp.dec_fleet_migrate (Rp.enc_fleet_migrate ~domain:"web-3" ~dest:"b")
    = ("web-3", "b"))

(* --- placement -------------------------------------------------------- *)

let test_placement () =
  let members = [ "a"; "b"; "c"; "d" ] in
  let uuids = List.init 256 (fun _ -> Vmm.Uuid.generate ()) in
  let place u = Fleet.consistent_hash_place u members in
  (* Deterministic. *)
  List.iter
    (fun u ->
      Alcotest.(check string) "stable" (place u) (place u);
      Alcotest.(check bool) "lands on a member" true
        (List.mem (place u) members))
    uuids;
  (* Every member owns something at this scale. *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "member %s owns keys" m)
        true
        (List.exists (fun u -> place u = m) uuids))
    members;
  (* Removing one member only moves the keys it owned: the consistent-
     hashing property that makes shard loss a local affair. *)
  let without = [ "a"; "b"; "d" ] in
  List.iter
    (fun u ->
      let before = place u in
      if before <> "c" then
        Alcotest.(check string) "unrelated keys stay put" before
          (Fleet.consistent_hash_place u without))
    uuids;
  (* Single member short-circuits; empty fleet is a caller bug. *)
  Alcotest.(check string) "singleton" "only"
    (Fleet.consistent_hash_place (List.hd uuids) [ "only" ]);
  match Fleet.consistent_hash_place (List.hd uuids) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty member list accepted"

(* --- wire compatibility ----------------------------------------------- *)

let raw_client daemon =
  match
    Rpc_client.connect ~address:(daemon ^ "-sock") ~kind:Transport.Unix_sock
      ~program:Rp.program ~version:Rp.version ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)

let raw_call client proc body =
  Rpc_client.call client ~procedure:(Rp.proc_to_int proc) ~body ()

let raw_open client uri =
  vok (Result.map Rp.dec_unit_body (raw_call client Rp.Proc_open (Rp.enc_string_body uri)))

let test_old_daemon_rejects_fleet_procs () =
  (* A minor-6 daemon must answer the fleet procedures exactly like a
     build that predates them. *)
  let config = { quiet_config with Daemon_config.proto_minor = 6 } in
  let dname = fresh_name "v16d" in
  let daemon = Daemon.start ~name:dname ~config () in
  Fun.protect
    ~finally:(fun () -> Daemon.stop daemon)
    (fun () ->
      let client = raw_client dname in
      raw_open client (Printf.sprintf "test://%s/" (fresh_name "v16n"));
      List.iter
        (fun proc ->
          match raw_call client proc Rp.enc_unit_body with
          | Ok _ -> Alcotest.fail "v1.6 daemon accepted a fleet procedure"
          | Error e ->
            Alcotest.(check string) "wording identical to unknown proc"
              (Printf.sprintf "unknown remote procedure %d" (Rp.proc_to_int proc))
              e.Verror.message)
        [ Rp.Proc_fleet_list_all; Rp.Proc_fleet_status ];
      Rpc_client.close client)

let test_plain_daemon_is_fleet_of_one () =
  let dname = fresh_name "f1d" in
  let node = fresh_name "f1n" in
  let daemon = Daemon.start ~name:dname ~config:quiet_config () in
  Fun.protect
    ~finally:(fun () -> Daemon.stop daemon)
    (fun () ->
      let conn =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" node dname))
      in
      let _ = seed_domain conn "solo" in
      (* Raw wire view: annotated listing with one member, no errors. *)
      let client = raw_client dname in
      raw_open client (Printf.sprintf "test://%s/" node);
      let listing =
        Rp.dec_fleet_listing
          (vok (raw_call client Rp.Proc_fleet_list_all Rp.enc_unit_body))
      in
      Alcotest.(check int) "one member" 1 listing.Driver.fl_members;
      Alcotest.(check int) "no shard errors" 0
        (List.length listing.Driver.fl_shard_errors);
      Alcotest.(check bool) "carries the domain" true
        (List.exists
           (fun r -> r.Driver.rec_ref.Driver.dom_name = "solo")
           listing.Driver.fl_records);
      (* Status on a non-fleet connection is unsupported, not unknown. *)
      (match raw_call client Rp.Proc_fleet_status Rp.enc_unit_body with
       | Ok _ -> Alcotest.fail "plain daemon reported fleet status"
       | Error e ->
         Alcotest.(check bool) "unsupported" true
           (e.Verror.code = Verror.Operation_unsupported));
      Rpc_client.close client;
      (* The remote driver's v1.7 listing path rides the same proc. *)
      let records = vok (Connect.list_all_domains conn) in
      Alcotest.(check bool) "client bulk listing works" true
        (List.exists (fun r -> r.Driver.rec_ref.Driver.dom_name = "solo") records);
      Connect.close conn)

(* --- health state machine and the shared prober ------------------------ *)

let test_health_machine_and_single_prober () =
  (* The member's daemon is not running: every probe fails. *)
  let dname = fresh_name "hd" in
  let uri = Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "hn") dname in
  let t =
    Fleet.create ~name:(fresh_name "hfleet") ~members:[ ("m1", uri) ]
      ~probe_interval_s:0.05 ~probe_timeout_s:0.2 ~down_threshold:3 ()
  in
  let resyncs = ref 0 in
  let (_ : Events.subscription) =
    Events.subscribe (Fleet.ops_of t).Driver.events (fun ev ->
        if ev.Events.lifecycle = Events.Ev_resync then incr resyncs)
  in
  Fleet.probe_now t;
  Alcotest.(check string) "one failure degrades" "degraded"
    (Driver.member_health_name (member_health t "m1"));
  Fleet.probe_now t;
  Fleet.probe_now t;
  Alcotest.(check string) "threshold opens the breaker" "down"
    (Driver.member_health_name (member_health t "m1"));
  Alcotest.(check bool) "down transition emitted a resync marker" true
    (eventually (fun () -> !resyncs = 1));
  Fleet.probe_now t;
  Alcotest.(check int) "staying down re-emits nothing" 1 !resyncs;
  (* Recovery passes through Degraded (hysteresis): one good probe must
     not flip a flapping member straight back to Up. *)
  let daemon = Daemon.start ~name:dname ~config:quiet_config () in
  Fun.protect
    ~finally:(fun () -> Daemon.stop daemon)
    (fun () ->
      Fleet.probe_now t;
      Alcotest.(check string) "first success only degrades" "degraded"
        (Driver.member_health_name (member_health t "m1"));
      Fleet.probe_now t;
      Alcotest.(check string) "second success restores" "up"
        (Driver.member_health_name (member_health t "m1"));
      let fs = Fleet.status t in
      let m = List.hd fs.Driver.fs_members in
      Alcotest.(check bool) "probes counted" true (m.Driver.ms_probes >= 6);
      Alcotest.(check bool) "failures counted" true (m.Driver.ms_failures >= 3);
      (* However many fleets exist, exactly one prober thread does. *)
      let t2 =
        Fleet.create ~name:(fresh_name "hfleet2") ~members:[]
          ~probe_interval_s:0.05 ()
      in
      ignore (Fleet.ops_of t2);
      Alcotest.(check int) "single shared prober thread" 1
        (Fleet.prober_thread_count ()))

(* --- chaos: member death mid-query ------------------------------------ *)

let test_scatter_degraded_on_member_death () =
  with_members [ "m1"; "m2"; "m3" ] (fun members ->
      let conns = List.map member_conn members in
      List.iteri
        (fun i conn ->
          ignore (seed_domain conn (Printf.sprintf "ch-%d-a" i));
          ignore (seed_domain conn (Printf.sprintf "ch-%d-b" i)))
        conns;
      let t = fleet_of ~slice:0.5 members in
      let ops = Fleet.ops_of t in
      let fv = Option.get ops.Driver.fleet in
      (* Each test node also carries its default seeded domain; count
         only the rows this test created. *)
      let ours listing =
        List.filter
          (fun r ->
            let n = r.Driver.rec_ref.Driver.dom_name in
            String.length n > 3 && String.sub n 0 3 = "ch-")
          listing.Driver.fl_records
      in
      let l = vok (fv.Driver.fleet_list_all ()) in
      Alcotest.(check int) "all six domains" 6 (List.length (ours l));
      Alcotest.(check int) "three members" 3 l.Driver.fl_members;
      Alcotest.(check int) "no errors while healthy" 0
        (List.length l.Driver.fl_shard_errors);
      (* Kill one member, then query again: the listing must complete
         within the deadline, report the dead shard, and keep every
         surviving row exactly once. *)
      kill_member (List.nth members 1);
      let t0 = Unix.gettimeofday () in
      let l2 = vok (fv.Driver.fleet_list_all ()) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the shard slice (%.3fs)" elapsed)
        true (elapsed < 2.0);
      Alcotest.(check int) "dead shard reported" 1
        (List.length l2.Driver.fl_shard_errors);
      Alcotest.(check string) "the right shard" "m2"
        (List.hd l2.Driver.fl_shard_errors).Driver.se_member;
      let names =
        List.map (fun r -> r.Driver.rec_ref.Driver.dom_name) (ours l2)
      in
      Alcotest.(check int) "survivors only" 4 (List.length names);
      Alcotest.(check int) "zero double-counted domains"
        (List.length names)
        (List.length (List.sort_uniq compare names));
      Alcotest.(check bool) "m2 rows gone" true
        (not (List.exists (fun n -> String.length n > 3 && n.[3] = '1') names));
      (* The degradation feeds the CLI's partial-failure accounting. *)
      (match Fleet.conn_stats ops with
       | Some st -> Alcotest.(check bool) "sub_errors counted" true
           (st.Fleet.st_sub_errors >= 1)
       | None -> Alcotest.fail "fleet connection has no stats");
      (* Repeated failures open the breaker; a Down shard is then skipped
         instantly with a structured marker. *)
      let l3 = vok (fv.Driver.fleet_list_all ()) in
      let l4 = vok (fv.Driver.fleet_list_all ()) in
      ignore l3;
      let t1 = Unix.gettimeofday () in
      let l5 = vok (fv.Driver.fleet_list_all ()) in
      ignore l4;
      Alcotest.(check bool) "down shard skipped fast" true
        (Unix.gettimeofday () -. t1 < 0.5);
      Alcotest.(check int) "still reported as an error" 1
        (List.length l5.Driver.fl_shard_errors);
      Alcotest.(check string) "down marker names the member" "m2"
        (List.hd l5.Driver.fl_shard_errors).Driver.se_member;
      List.iter Connect.close conns)

let test_no_double_count_mid_migration () =
  (* A domain momentarily defined on two members (reserved on the
     destination, still live on the source) must appear once, as the
     running row. *)
  with_members [ "m1"; "m2" ] (fun members ->
      let cA = member_conn (List.nth members 0) in
      let cB = member_conn (List.nth members 1) in
      let uuid = Vmm.Uuid.generate () in
      ignore (seed_domain cA ~uuid "twin";);
      ignore (seed_domain cB ~uuid ~running:false "twin");
      let t = fleet_of members in
      let ops = Fleet.ops_of t in
      let fv = Option.get ops.Driver.fleet in
      let l = vok (fv.Driver.fleet_list_all ()) in
      let rows =
        List.filter
          (fun r -> r.Driver.rec_ref.Driver.dom_name = "twin")
          l.Driver.fl_records
      in
      Alcotest.(check int) "exactly one row" 1 (List.length rows);
      Alcotest.(check bool) "the running row wins" true
        ((List.hd rows).Driver.rec_info.Driver.di_state <> Vmm.Vm_state.Shutoff);
      Connect.close cA;
      Connect.close cB)

(* --- cross-shard batch refusal ----------------------------------------- *)

let test_cross_shard_batch_refused () =
  with_members [ "m1"; "m2" ] (fun members ->
      let cA = member_conn (List.nth members 0) in
      let cB = member_conn (List.nth members 1) in
      ignore (seed_domain cA ~running:false "batch-a1");
      ignore (seed_domain cA ~running:false "batch-a2");
      ignore (seed_domain cB ~running:false "batch-b1");
      let t = fleet_of members in
      (* The controller is a daemon whose driver federates: open the
         fleet through it and speak raw batches. *)
      let ctl = fresh_name "ctld" in
      let daemon = Daemon.start ~name:ctl ~config:quiet_config () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop daemon)
        (fun () ->
          let client = raw_client ctl in
          raw_open client ("fleet:///" ^ Fleet.name t);
          let create_sub name =
            (Rp.proc_to_int Rp.Proc_dom_create, Rp.enc_string_body name)
          in
          (* Mutations spanning members: refused whole, before any side
             effect. *)
          (match
             raw_call client Rp.Proc_call_batch
               (Rp.enc_batch_call [ create_sub "batch-a1"; create_sub "batch-b1" ])
           with
           | Ok _ -> Alcotest.fail "cross-shard batch accepted"
           | Error e ->
             Alcotest.(check bool) "operation_invalid" true
               (e.Verror.code = Verror.Operation_invalid);
             Alcotest.(check bool) "refusal names the rule" true
               (String.length e.Verror.message >= 25
               && String.sub e.Verror.message 0 25 = "cross-shard batch refused"));
          Alcotest.(check bool) "no sub-call executed" true
            (vok (Domain.get_state (vok (Domain.lookup_by_name cA "batch-a1")))
             = Vmm.Vm_state.Shutoff);
          (* Same-member mutations batch fine. *)
          let replies =
            Rp.dec_batch_reply
              (vok
                 (raw_call client Rp.Proc_call_batch
                    (Rp.enc_batch_call
                       [ create_sub "batch-a1"; create_sub "batch-a2" ])))
          in
          Alcotest.(check (list bool)) "both applied" [ true; true ]
            (List.map fst replies);
          (* Read-only batches may span shards freely. *)
          let info_sub name =
            (Rp.proc_to_int Rp.Proc_dom_get_info, Rp.enc_string_body name)
          in
          let replies =
            Rp.dec_batch_reply
              (vok
                 (raw_call client Rp.Proc_call_batch
                    (Rp.enc_batch_call [ info_sub "batch-a1"; info_sub "batch-b1" ])))
          in
          Alcotest.(check (list bool)) "reads span shards" [ true; true ]
            (List.map fst replies);
          Rpc_client.close client);
      Connect.close cA;
      Connect.close cB)

(* --- migration --------------------------------------------------------- *)

let test_migration_end_to_end () =
  with_members [ "m1"; "m2" ] (fun members ->
      let cA = member_conn (List.nth members 0) in
      let cB = member_conn (List.nth members 1) in
      ignore (seed_domain cA "mig-run");
      ignore (seed_domain cA ~running:false "mig-cold");
      let t = fleet_of members in
      let ops = Fleet.ops_of t in
      let fv = Option.get ops.Driver.fleet in
      let migrated = ref [] in
      let (_ : Events.subscription) =
        Events.subscribe ops.Driver.events (fun ev ->
            if ev.Events.lifecycle = Events.Ev_migrated then
              migrated := ev.Events.domain_name :: !migrated)
      in
      vok (Fleet.fleet_migrate t ~domain:"mig-run" ~dest:"m2");
      (* Source released, destination authoritative and running. *)
      expect_verr Verror.No_domain (Domain.lookup_by_name cA "mig-run");
      Alcotest.(check bool) "runs on the destination" true
        (vok (Domain.get_state (vok (Domain.lookup_by_name cB "mig-run")))
        <> Vmm.Vm_state.Shutoff);
      Alcotest.(check string) "ownership moved" "m2"
        (vok (fv.Driver.fleet_owner "mig-run"));
      Alcotest.(check bool) "migration event emitted" true
        (eventually (fun () -> !migrated = [ "mig-run" ]));
      (* A stopped domain migrates as a cold copy. *)
      vok (Fleet.fleet_migrate t ~domain:"mig-cold" ~dest:"m2");
      Alcotest.(check bool) "cold copy stays stopped" true
        (vok (Domain.get_state (vok (Domain.lookup_by_name cB "mig-cold")))
        = Vmm.Vm_state.Shutoff);
      (* Migrating onto the owner is refused. *)
      expect_verr Verror.Operation_invalid
        (Fleet.fleet_migrate t ~domain:"mig-run" ~dest:"m2");
      let fs = Fleet.status t in
      Alcotest.(check int) "no migrations left active" 0
        fs.Driver.fs_migrations_active;
      Connect.close cA;
      Connect.close cB)

let crash_phases = [ "begin"; "reserved"; "switchover"; "finished"; "released"; "end" ]

let test_migration_crash_sweep () =
  (* Kill the controller at every journaled boundary; recovery (a new
     controller incarnation replaying the same journal) must converge on
     exactly one copy of the domain — running, never split-brained. *)
  List.iter
    (fun phase ->
      with_members [ "m1"; "m2" ] (fun members ->
          let cA = member_conn (List.nth members 0) in
          let cB = member_conn (List.nth members 1) in
          ignore (seed_domain cA "sweep");
          let fname = fresh_name "sweepfleet" in
          let mk () =
            Fleet.create ~name:fname
              ~members:(List.map (fun m -> (m.md_member, m.md_uri)) members)
              ~shard_slice_s:1.0 ~probe_interval_s:0.05 ~probe_timeout_s:0.2 ()
          in
          let t = mk () in
          Fleet.crash_hook :=
            (fun p -> if p = phase then failwith ("controller killed @" ^ p));
          (match Fleet.fleet_migrate t ~domain:"sweep" ~dest:"m2" with
           | exception Failure _ -> ()
           | Ok () -> Alcotest.failf "%s: hook did not fire" phase
           | Error e -> Alcotest.failf "%s: %s" phase (Verror.to_string e));
          Fleet.crash_hook := (fun _ -> ());
          (* Controller restart: same name, same journal, recovery runs. *)
          Fleet.dissolve fname;
          let t2 = mk () in
          let on_a = Result.is_ok (Domain.lookup_by_name cA "sweep") in
          let on_b = Result.is_ok (Domain.lookup_by_name cB "sweep") in
          Alcotest.(check bool)
            (Printf.sprintf "%s: exactly one copy" phase)
            true
            ((on_a || on_b) && not (on_a && on_b));
          let expect_dest =
            List.mem phase [ "switchover"; "finished"; "released"; "end" ]
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: authoritative side" phase)
            expect_dest on_b;
          let home = if expect_dest then cB else cA in
          Alcotest.(check bool)
            (Printf.sprintf "%s: still running" phase)
            true
            (vok (Domain.get_state (vok (Domain.lookup_by_name home "sweep")))
            <> Vmm.Vm_state.Shutoff);
          let fs = Fleet.status t2 in
          (match phase with
           | "begin" | "reserved" ->
             Alcotest.(check int)
               (Printf.sprintf "%s: rolled back" phase)
               1 fs.Driver.fs_migrations_rolled_back
           | "switchover" | "finished" | "released" ->
             Alcotest.(check int)
               (Printf.sprintf "%s: rolled forward" phase)
               1 fs.Driver.fs_migrations_recovered
           | _ ->
             (* The journal closed cleanly: nothing to recover. *)
             Alcotest.(check int) "end: nothing recovered" 0
               (fs.Driver.fs_migrations_recovered
               + fs.Driver.fs_migrations_rolled_back));
          (* Recovering a recovery is a no-op (idempotence). *)
          Fleet.dissolve fname;
          let t3 = mk () in
          let fs3 = Fleet.status t3 in
          Alcotest.(check int)
            (Printf.sprintf "%s: second recovery finds nothing" phase)
            0
            (fs3.Driver.fs_migrations_recovered
            + fs3.Driver.fs_migrations_rolled_back);
          Fleet.dissolve fname;
          Connect.close cA;
          Connect.close cB))
    crash_phases

(* --- admin surface ------------------------------------------------------ *)

let test_admin_fleet_status () =
  with_members [ "m1" ] (fun members ->
      let t = fleet_of members in
      let ctl = fresh_name "admfd" in
      let daemon = Daemon.start ~name:ctl ~config:quiet_config () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop daemon)
        (fun () ->
          let admin = vok (Admin.connect ~daemon:ctl ()) in
          Fun.protect
            ~finally:(fun () -> Admin.close admin)
            (fun () ->
              let statuses = vok (Admin.fleet_status admin) in
              match
                List.find_opt
                  (fun fs -> fs.Driver.fs_fleet = Fleet.name t)
                  statuses
              with
              | None -> Alcotest.fail "fleet missing from admin status"
              | Some fs ->
                Alcotest.(check int) "one member" 1
                  (List.length fs.Driver.fs_members);
                Alcotest.(check string) "member name" "m1"
                  (List.hd fs.Driver.fs_members).Driver.ms_name)))

(* --- the full-suite fleet pass (CI-gated) ------------------------------- *)

(* OVIRT_FLEET_SUITE=1 runs the whole ordinary driver surface against a
   3-member fleet: every operation the shell uses, dispatched through
   placement routing and scatter-gather instead of a single node. *)
let test_fleet_suite () =
  with_members [ "m1"; "m2"; "m3" ] (fun members ->
      let t = fleet_of members in
      let conn = vok (Connect.open_uri ("fleet:///" ^ Fleet.name t)) in
      Alcotest.(check string) "driver name" "fleet" (Connect.driver_name conn);
      Alcotest.(check string) "hostname is the fleet" (Fleet.name t)
        (vok (Connect.hostname conn));
      let caps = vok (Connect.capabilities conn) in
      Alcotest.(check string) "federated capabilities" "federated"
        caps.Ovirt.Capabilities.virt_kind;
      (* Define a spread of domains through placement. *)
      let names = List.init 12 (fun i -> Printf.sprintf "suite-%d" i) in
      let doms =
        List.map (fun n -> vok (Domain.define_xml conn (dom_xml n))) names
      in
      List.iter (fun d -> vok (Domain.create d)) doms;
      let records = vok (Connect.list_all_domains conn) in
      Alcotest.(check int) "all rows visible fleet-wide" 12
        (List.length
           (List.filter
              (fun r ->
                List.mem r.Driver.rec_ref.Driver.dom_name names)
              records));
      (* Placement actually spread the load. *)
      let fs = Fleet.status t in
      let loaded =
        List.filter (fun m -> m.Driver.ms_domains > 0) fs.Driver.fs_members
      in
      Alcotest.(check bool) "more than one member loaded" true
        (List.length loaded > 1);
      (* Point reads and writes route transparently. *)
      let d0 = vok (Domain.lookup_by_name conn "suite-0") in
      Alcotest.(check bool) "running" true (vok (Domain.is_active d0));
      vok (Domain.suspend d0);
      Alcotest.(check bool) "suspended" true
        (vok (Domain.get_state d0) = Vmm.Vm_state.Paused);
      vok (Domain.resume d0);
      vok (Domain.set_memory d0 (4 * 1024));
      expect_verr Verror.Invalid_arg (Domain.set_memory d0 (64 * 1024));
      Alcotest.(check int) "info routed to the owner" (8 * 1024)
        (vok (Domain.get_info d0)).Driver.di_max_mem_kib;
      let d1 = vok (Domain.lookup_by_name conn "suite-1") in
      vok (Domain.set_autostart d1 true);
      Alcotest.(check bool) "autostart round-trips" true
        (vok (Domain.get_autostart d1));
      let by_uuid = vok (Domain.lookup_by_uuid conn (Domain.uuid d0)) in
      Alcotest.(check string) "uuid lookup" "suite-0" (Domain.name by_uuid);
      (* XML fetch routes to the owner. *)
      Alcotest.(check bool) "xml routed" true
        (String.length (vok (Domain.xml_desc d0)) > 0);
      (* Migrate one domain away from wherever placement put it. *)
      let fv = Option.get (vok (Connect.ops conn)).Driver.fleet in
      let owner = vok (fv.Driver.fleet_owner "suite-2") in
      let dest =
        List.find (fun m -> m.md_member <> owner) members
      in
      vok (fv.Driver.fleet_migrate ~domain:"suite-2" ~dest:dest.md_member);
      Alcotest.(check string) "moved" dest.md_member
        (vok (fv.Driver.fleet_owner "suite-2"));
      (* Events from any member surface on the fleet bus. *)
      let seen = ref [] in
      let sub =
        vok
          (Connect.subscribe_events conn (fun ev ->
               seen := ev.Events.domain_name :: !seen))
      in
      let d3 = vok (Domain.lookup_by_name conn "suite-3") in
      vok (Domain.destroy d3);
      Alcotest.(check bool) "member event reached the fleet bus" true
        (eventually (fun () -> List.mem "suite-3" !seen));
      Connect.unsubscribe_events conn sub;
      (* Teardown through the fleet. *)
      List.iter
        (fun d ->
          (match Domain.get_state d with
           | Ok s when s <> Vmm.Vm_state.Shutoff -> vok (Domain.destroy d)
           | _ -> ());
          vok (Domain.undefine d))
        doms;
      let left =
        List.filter
          (fun r -> List.mem r.Driver.rec_ref.Driver.dom_name names)
          (vok (Connect.list_all_domains conn))
      in
      Alcotest.(check int) "all undefined" 0 (List.length left);
      Connect.close conn)

let suite_gated =
  if Sys.getenv_opt "OVIRT_FLEET_SUITE" = Some "1" then
    [ quick "full driver surface over a 3-member fleet" test_fleet_suite ]
  else []

let () =
  Alcotest.run "fleet"
    [
      ( "wire",
        [
          quick "v1.7 numbering, gating and retry classes" test_wire_numbering;
          quick "codec roundtrips" test_codec_roundtrips;
          quick "minor-6 daemons reject fleet procs verbatim"
            test_old_daemon_rejects_fleet_procs;
          quick "plain daemon answers as a fleet of one"
            test_plain_daemon_is_fleet_of_one;
        ] );
      ("placement", [ quick "consistent-hash ring" test_placement ]);
      ( "health",
        [
          quick "state machine, hysteresis, one prober thread"
            test_health_machine_and_single_prober;
        ] );
      ( "chaos",
        [
          quick "member death degrades, never hangs"
            test_scatter_degraded_on_member_death;
          quick "mid-migration twin rows dedupe" test_no_double_count_mid_migration;
        ] );
      ( "batch",
        [ quick "cross-shard mutation batches refused" test_cross_shard_batch_refused ]
      );
      ( "migration",
        [
          quick "journaled two-phase handshake end-to-end"
            test_migration_end_to_end;
          quick "crash-point sweep: no lost domain, no split-brain"
            test_migration_crash_sweep;
        ] );
      ("admin", [ quick "fleet-status procedure" test_admin_fleet_status ]);
      ("suite", suite_gated);
    ]
