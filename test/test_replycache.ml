(* Server reply cache (zero-work read path): LRU/stamp semantics of the
   cache itself, byte-for-byte equality of cached and uncached replies
   for every procedure in the hot read set (only the serial word may
   differ), freshness under write churn with fault-injected disconnects
   across several reconnect seeds, wire-invisibility on minor-pinned
   daemons, the opt-out knobs (daemon config and per-connection URI
   parameter), and the admin stats procedure. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Storage = Ovirt.Storage
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Admin = Ovirt.Admin_client
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Faults = Ovnet.Faults
module Reply_cache = Ovdaemon.Reply_cache
module Rpc_packet = Ovrpc.Rpc_packet
module Rp = Protocol.Remote_protocol
module Ap = Protocol.Admin_protocol

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "rcd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

(* --- wire numbering -------------------------------------------------------- *)

let test_admin_numbering_stable () =
  Alcotest.(check int) "Proc_daemon_reply_cache_stats wire number" 21
    (Ap.proc_to_int Ap.Proc_daemon_reply_cache_stats);
  match Ap.proc_of_int 21 with
  | Ok Ap.Proc_daemon_reply_cache_stats -> ()
  | _ -> Alcotest.fail "21 does not decode to Proc_daemon_reply_cache_stats"

(* --- cache unit semantics --------------------------------------------------- *)

let test_cache_semantics () =
  let c = Reply_cache.create ~max_entries:2 in
  Alcotest.(check (option string)) "empty cache misses" None
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:0);
  Reply_cache.insert c ~proc:1 ~args:"a" ~gen:0 "frame-a";
  Alcotest.(check (option string)) "hit at matching gen" (Some "frame-a")
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:0);
  (* Same args under a different procedure is a distinct key. *)
  Alcotest.(check (option string)) "proc is part of the key" None
    (Reply_cache.find c ~proc:2 ~args:"a" ~gen:0);
  (* A stale stamp invalidates on lookup. *)
  Alcotest.(check (option string)) "stale stamp drops the entry" None
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:1);
  Alcotest.(check (option string)) "dropped entry stays gone" None
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:0);
  (* LRU: touch [a] so [b] is the eviction victim when [d] arrives. *)
  Reply_cache.insert c ~proc:1 ~args:"a" ~gen:1 "frame-a1";
  Reply_cache.insert c ~proc:1 ~args:"b" ~gen:1 "frame-b";
  ignore (Reply_cache.find c ~proc:1 ~args:"a" ~gen:1);
  Reply_cache.insert c ~proc:1 ~args:"d" ~gen:1 "frame-d";
  Alcotest.(check (option string)) "recently used survives" (Some "frame-a1")
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:1);
  Alcotest.(check (option string)) "LRU victim evicted" None
    (Reply_cache.find c ~proc:1 ~args:"b" ~gen:1);
  (* Re-insert replaces in place. *)
  Reply_cache.insert c ~proc:1 ~args:"a" ~gen:2 "frame-a2";
  Alcotest.(check (option string)) "re-insert replaces" (Some "frame-a2")
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:2);
  let s = Reply_cache.stats c in
  Alcotest.(check int) "entries bounded" 2 s.Reply_cache.entries;
  Alcotest.(check int) "bytes track frames"
    (String.length "frame-a2" + String.length "frame-d")
    s.Reply_cache.bytes;
  Alcotest.(check int) "one eviction" 1 s.Reply_cache.evictions;
  Alcotest.(check bool) "hits counted" true (s.Reply_cache.hits >= 3);
  Alcotest.(check bool) "stale lookups count as invalidations" true
    (s.Reply_cache.invalidations >= 1);
  Reply_cache.invalidate_all c;
  Alcotest.(check int) "flushed" 0 (Reply_cache.stats c).Reply_cache.entries;
  Alcotest.(check (option string)) "nothing survives a flush" None
    (Reply_cache.find c ~proc:1 ~args:"a" ~gen:2)

(* --- raw-frame harness ------------------------------------------------------ *)

(* A raw RPC connection whose reply frames are recorded exactly as they
   came off the wire: the receiver thread appends each frame before the
   caller is woken, so after [call] returns the newest recorded frame is
   that call's reply. *)
let connect_raw daemon =
  let mu = Mutex.create () in
  let frames = ref [] in
  let client =
    match
      Rpc_client.connect
        ~address:(Daemon.mgmt_address daemon)
        ~kind:Transport.Unix_sock ~program:Rp.program ~version:Rp.version ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (Verror.to_string e)
  in
  Rpc_client.set_raw_reply_hook client
    (Some
       (fun wire ->
         Mutex.lock mu;
         frames := wire :: !frames;
         Mutex.unlock mu));
  let last () =
    Mutex.lock mu;
    let f = match !frames with [] -> Alcotest.fail "no frame recorded" | f :: _ -> f in
    Mutex.unlock mu;
    f
  in
  (client, last)

let rpc_open client uri =
  match
    Rpc_client.call client
      ~procedure:(Rp.proc_to_int Rp.Proc_open)
      ~body:(Rp.enc_string_body uri) ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Proc_open: %s" (Verror.to_string e)

let call_frame client last proc body =
  let r = Rpc_client.call client ~procedure:(Rp.proc_to_int proc) ~body () in
  (r, last ())

let zero_serial frame = Rpc_packet.with_serial frame 0

(* Every procedure in the hot read set, with canonical argument bytes
   against the default node population (one running domain "test"). *)
let cached_calls ~uuid ~vol_path =
  [
    ("capabilities", Rp.Proc_get_capabilities, "");
    ("dom_list_all", Rp.Proc_dom_list_all, "");
    ("dom_get_info", Rp.Proc_dom_get_info, Rp.enc_string_body "test");
    ("dom_get_xml", Rp.Proc_dom_get_xml, Rp.enc_string_body "test");
    ("lookup_by_name", Rp.Proc_lookup_by_name, Rp.enc_string_body "test");
    ("lookup_by_uuid", Rp.Proc_lookup_by_uuid, Rp.enc_string_body uuid);
    ("vol_lookup", Rp.Proc_vol_lookup, Rp.enc_string_body vol_path);
  ]

let test_byte_equality_all_procs () =
  with_daemon (fun name daemon ->
      let host = fresh_name "rceq" in
      (* Seed extra node state through a direct (in-process) connection
         to the same driver node the daemon serves. *)
      let producer = vok (Connect.open_uri (Printf.sprintf "test://%s/" host)) in
      let pool =
        vok
          (Storage.define_pool producer ~name:"rcpool" ~target_path:"/rc"
             ~capacity_b:(1 lsl 30))
      in
      vok (Storage.start_pool pool);
      let vol =
        vok (Storage.create_volume pool ~name:"v0" ~capacity_b:4096 ~format:"raw")
      in
      let vol_path = vol.Ovirt.Storage_backend.vol_key in
      let uuid =
        Vmm.Uuid.to_string
          (Domain.uuid (vok (Domain.lookup_by_name producer "test")))
      in
      let on_client, on_last = connect_raw daemon in
      let off_client, off_last = connect_raw daemon in
      rpc_open on_client (Printf.sprintf "test://%s/" host);
      rpc_open off_client (Printf.sprintf "test://%s/?replycache=0" host);
      List.iter
        (fun (label, proc, body) ->
          let r1, f1 = call_frame on_client on_last proc body in
          let r2, f2 = call_frame on_client on_last proc body in
          let r3, f3 = call_frame off_client off_last proc body in
          let b1 = vok r1 and b2 = vok r2 and b3 = vok r3 in
          Alcotest.(check string) (label ^ ": cached body stable") b1 b2;
          Alcotest.(check string) (label ^ ": body equals uncached") b1 b3;
          Alcotest.(check string)
            (label ^ ": miss and hit frames differ only in serial")
            (zero_serial f1) (zero_serial f2);
          Alcotest.(check string)
            (label ^ ": cached frame equals uncached frame")
            (zero_serial f1) (zero_serial f3))
        (cached_calls ~uuid ~vol_path);
      (* A write through the direct connection must be visible to the next
         cached read: set_autostart emits no lifecycle event, so this
         exercises the generation-stamp backstop specifically (the event
         bus never fires). *)
      let ddom = vok (Domain.lookup_by_name producer "test") in
      let autostart_of body =
        match
          List.find_opt
            (fun r -> r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_name = "test")
            (Rp.dec_domain_record_list body)
        with
        | Some r -> r.Ovirt.Driver.rec_autostart
        | None -> Alcotest.fail "domain missing from bulk listing"
      in
      let list_all () =
        autostart_of
          (vok
             (Rpc_client.call on_client
                ~procedure:(Rp.proc_to_int Rp.Proc_dom_list_all)
                ~body:"" ()))
      in
      Alcotest.(check (option bool)) "autostart starts clear" (Some false)
        (list_all ());
      vok (Domain.set_autostart ddom true);
      Alcotest.(check (option bool)) "event-less write invalidates"
        (Some true) (list_all ());
      (* The hot set really was served from the cache. *)
      let admin = vok (Admin.connect ~daemon:name ()) in
      let rc = vok (Admin.reply_cache_stats admin) in
      Alcotest.(check bool) "cache enabled" true rc.Admin.rc_enabled;
      Alcotest.(check bool) "hits recorded" true (rc.Admin.rc_hits >= 7);
      Alcotest.(check bool) "patched-serial sends recorded" true
        (rc.Admin.rc_patched_sends >= 7);
      Alcotest.(check bool) "insertions recorded" true (rc.Admin.rc_insertions >= 7);
      Admin.close admin;
      Rpc_client.close on_client;
      Rpc_client.close off_client;
      Connect.close producer)

(* --- freshness under churn -------------------------------------------------- *)

(* Writers mutate through the direct path while reader threads hammer the
   cached read path through the daemon — across a listener fault plan
   that keeps cutting the readers' connections (drv_remote re-issues
   idempotent reads after reconnecting).  After every write completes,
   the very next cached read must observe it: zero stale reads, over
   several reconnect seeds. *)
let test_stale_read_chaos () =
  List.iter
    (fun seed ->
      with_daemon (fun name daemon ->
          let host = fresh_name "rchaos" in
          let producer =
            vok (Connect.open_uri (Printf.sprintf "test://%s/" host))
          in
          let ddom = vok (Domain.lookup_by_name producer "test") in
          let remote =
            vok
              (Connect.open_uri
                 (Printf.sprintf
                    "test+unix://%s/?daemon=%s&reconnect=16&reconnect_delay=0.002&reconnect_max_delay=0.02&reconnect_seed=%d"
                    host name seed))
          in
          let rdom = vok (Domain.lookup_by_name remote "test") in
          Alcotest.(check bool) "plan attached" true
            (Netsim.set_listener_faults (Daemon.mgmt_address daemon)
               (Some (Faults.plan ~seed [ Faults.Drop_after 40 ])));
          let stop = Atomic.make false in
          let hammer_errors = Atomic.make 0 in
          let hammers =
            List.init 3 (fun _ ->
                Thread.create
                  (fun () ->
                    while not (Atomic.get stop) do
                      (match Domain.get_info rdom with
                       | Ok _ -> ()
                       | Error _ -> Atomic.incr hammer_errors);
                      match Connect.list_all_domains remote with
                      | Ok _ -> ()
                      | Error _ -> Atomic.incr hammer_errors
                    done)
                  ())
          in
          (* Toggle an event-less write and immediately read it back
             through the cached bulk listing: any cached frame surviving
             the write would surface as a stale flag. *)
          let stale = ref 0 in
          for i = 1 to 60 do
            let flag = i mod 2 = 0 in
            vok (Domain.set_autostart ddom flag);
            let recs = vok (Connect.list_all_domains remote) in
            match
              List.find_opt
                (fun r -> r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_name = "test")
                recs
            with
            | Some r when r.Ovirt.Driver.rec_autostart = Some flag -> ()
            | Some _ | None -> incr stale
          done;
          Atomic.set stop true;
          List.iter Thread.join hammers;
          ignore (Netsim.set_listener_faults (Daemon.mgmt_address daemon) None);
          Alcotest.(check int)
            (Printf.sprintf "seed %d: no stale reads" seed)
            0 !stale;
          Alcotest.(check int)
            (Printf.sprintf "seed %d: hammers survived the chaos" seed)
            0 (Atomic.get hammer_errors);
          Connect.close remote;
          Connect.close producer))
    [ 7; 23; 4242 ]

(* --- wire invisibility on old daemons --------------------------------------- *)

let test_minor_pinned_wire_invisible () =
  let config = { quiet_config with Daemon_config.proto_minor = 2 } in
  with_daemon ~config (fun _name daemon ->
      let host = fresh_name "rcold" in
      let on_client, on_last = connect_raw daemon in
      let off_client, off_last = connect_raw daemon in
      rpc_open on_client (Printf.sprintf "test://%s/" host);
      rpc_open off_client (Printf.sprintf "test://%s/?replycache=0" host);
      (* v1.3+ procedures must be rejected identically whether or not the
         cache exists — the fast path honours the minor gate. *)
      List.iter
        (fun proc ->
          let r1, f1 = call_frame on_client on_last proc "" in
          let r2, f2 = call_frame off_client off_last proc "" in
          (match (r1, r2) with
           | Error e1, Error e2 ->
             Alcotest.(check string) "identical rejection"
               (Verror.to_string e1) (Verror.to_string e2)
           | _ -> Alcotest.fail "gated procedure accepted");
          Alcotest.(check string) "rejection frames byte-identical"
            (zero_serial f1) (zero_serial f2))
        [ Rp.Proc_dom_list_all; Rp.Proc_vol_lookup ];
      (* v1.0 reads still flow — and still hit the cache. *)
      let body = Rp.enc_string_body "test" in
      let r1, f1 = call_frame on_client on_last Rp.Proc_dom_get_info body in
      let r2, f2 = call_frame on_client on_last Rp.Proc_dom_get_info body in
      Alcotest.(check string) "pinned daemon still caches v1.0 reads"
        (vok r1) (vok r2);
      Alcotest.(check string) "frames differ only in serial" (zero_serial f1)
        (zero_serial f2);
      Rpc_client.close on_client;
      Rpc_client.close off_client)

(* --- knobs ------------------------------------------------------------------ *)

let test_daemon_knob_disables () =
  let config = { quiet_config with Daemon_config.reply_cache = 0 } in
  with_daemon ~config (fun name _daemon ->
      let host = fresh_name "rcoff" in
      let remote =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" host name))
      in
      let dom = vok (Domain.lookup_by_name remote "test") in
      for _ = 1 to 5 do
        ignore (vok (Domain.get_info dom))
      done;
      let admin = vok (Admin.connect ~daemon:name ()) in
      let rc = vok (Admin.reply_cache_stats admin) in
      Alcotest.(check bool) "disabled" false rc.Admin.rc_enabled;
      Alcotest.(check int) "no caches created" 0 rc.Admin.rc_caches;
      Alcotest.(check int) "no hits" 0 rc.Admin.rc_hits;
      Admin.close admin;
      Connect.close remote)

let test_uri_param_opts_out () =
  with_daemon (fun name _daemon ->
      let host = fresh_name "rcopt" in
      let remote =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s&replycache=0" host name))
      in
      let dom = vok (Domain.lookup_by_name remote "test") in
      for _ = 1 to 5 do
        ignore (vok (Domain.get_info dom))
      done;
      let admin = vok (Admin.connect ~daemon:name ()) in
      let rc = vok (Admin.reply_cache_stats admin) in
      Alcotest.(check bool) "daemon knob still on" true rc.Admin.rc_enabled;
      Alcotest.(check int) "opted-out connection never hits" 0 rc.Admin.rc_hits;
      Admin.close admin;
      Connect.close remote)

let test_entries_knob_bounds_cache () =
  let config = { quiet_config with Daemon_config.reply_cache_entries = 1 } in
  with_daemon ~config (fun name _daemon ->
      let host = fresh_name "rcbound" in
      let remote =
        vok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" host name))
      in
      let dom = vok (Domain.lookup_by_name remote "test") in
      (* Two alternating keys through a one-entry cache: every lookup
         misses and every insert evicts. *)
      for _ = 1 to 4 do
        ignore (vok (Domain.get_info dom));
        ignore (vok (Domain.xml_desc dom))
      done;
      let admin = vok (Admin.connect ~daemon:name ()) in
      let rc = vok (Admin.reply_cache_stats admin) in
      Alcotest.(check bool) "evictions under the bound" true
        (rc.Admin.rc_evictions > 0);
      Alcotest.(check int) "never above the bound" 1 rc.Admin.rc_entries;
      Admin.close admin;
      Connect.close remote)

let test_config_roundtrip () =
  let cfg =
    {
      quiet_config with
      Daemon_config.reply_cache = 0;
      Daemon_config.reply_cache_entries = 9;
    }
  in
  match Daemon_config.parse (Daemon_config.to_file cfg) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok parsed ->
    Alcotest.(check int) "reply_cache survives" 0 parsed.Daemon_config.reply_cache;
    Alcotest.(check int) "reply_cache_entries survives" 9
      parsed.Daemon_config.reply_cache_entries;
    (match Daemon_config.parse "reply_cache_entries = 0" with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "zero-entry cache accepted")

let () =
  Alcotest.run "replycache"
    [
      ( "wire",
        [
          quick "admin numbering stable" test_admin_numbering_stable;
          quick "minor-pinned daemon indistinguishable"
            test_minor_pinned_wire_invisible;
        ] );
      ("semantics", [ quick "LRU, stamps, flush" test_cache_semantics ]);
      ( "byte equality",
        [ quick "all cached procedures" test_byte_equality_all_procs ] );
      ("freshness", [ quick "write churn with disconnects" test_stale_read_chaos ]);
      ( "knobs",
        [
          quick "daemon knob disables" test_daemon_knob_disables;
          quick "URI param opts a connection out" test_uri_param_opts_out;
          quick "entry bound enforced" test_entries_knob_bounds_cache;
          quick "config roundtrip" test_config_roundtrip;
        ] );
    ]
