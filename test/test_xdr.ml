(* XDR codec: unit cases for the wire format's fixed points, property
   tests for roundtrips, and malformation rejection. *)

open Testutil

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let test_int_wire_format () =
  Alcotest.(check string) "1 encodes big-endian" "00000001"
    (hex (Xdr.encode Xdr.enc_int 1));
  Alcotest.(check string) "-1 encodes as ffffffff" "ffffffff"
    (hex (Xdr.encode Xdr.enc_int (-1)));
  Alcotest.(check string) "min int32" "80000000"
    (hex (Xdr.encode Xdr.enc_int (-0x8000_0000)))

let test_int_range_check () =
  Alcotest.check_raises "too large" (Xdr.Error "enc_int: 2147483648 out of int32 range")
    (fun () -> ignore (Xdr.encode Xdr.enc_int 0x8000_0000));
  Alcotest.check_raises "uint negative"
    (Xdr.Error "enc_uint: -1 out of uint32 range") (fun () ->
      ignore (Xdr.encode Xdr.enc_uint (-1)))

let test_string_padding () =
  (* length word + bytes + zero padding to 4 *)
  Alcotest.(check string) "abc pads to one zero" "00000003616263 00"
    (let s = hex (Xdr.encode Xdr.enc_string "abc") in
     String.sub s 0 14 ^ " " ^ String.sub s 14 2);
  Alcotest.(check int) "abcd needs no padding" 8
    (String.length (Xdr.encode Xdr.enc_string "abcd"))

let test_nonzero_padding_rejected () =
  (* "abc" with a corrupted pad byte *)
  let wire = Bytes.of_string (Xdr.encode Xdr.enc_string "abc") in
  Bytes.set wire 7 'X';
  match Xdr.decode Xdr.dec_string (Bytes.to_string wire) with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "corrupted padding accepted"

let test_bool_strictness () =
  Alcotest.(check bool) "true roundtrip" true
    (Xdr.decode Xdr.dec_bool (Xdr.encode Xdr.enc_bool true));
  match Xdr.decode Xdr.dec_bool (Xdr.encode Xdr.enc_uint 2) with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "bool 2 accepted"

let test_truncation_rejected () =
  let wire = Xdr.encode Xdr.enc_string "hello world" in
  for cut = 0 to String.length wire - 1 do
    match Xdr.decode Xdr.dec_string (String.sub wire 0 cut) with
    | exception Xdr.Error _ -> ()
    | _ -> Alcotest.failf "truncation at %d accepted" cut
  done

let test_trailing_garbage_rejected () =
  let wire = Xdr.encode Xdr.enc_uint 7 ^ "\000" in
  match Xdr.decode Xdr.dec_uint wire with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

let test_array_count_bound () =
  (* A count far beyond the payload must be rejected up front. *)
  let wire = Xdr.encode Xdr.enc_uint 1_000_000 in
  match Xdr.decode (fun d -> Xdr.dec_array d Xdr.dec_uint) wire with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "oversized array count accepted"

let test_fixed_opaque () =
  let wire = Xdr.encode (fun e v -> Xdr.enc_fixed_opaque e 6 v) "abcdef" in
  Alcotest.(check int) "6 bytes pad to 8" 8 (String.length wire);
  Alcotest.(check string) "roundtrip" "abcdef"
    (Xdr.decode (fun d -> Xdr.dec_fixed_opaque d 6) wire);
  match Xdr.encode (fun e v -> Xdr.enc_fixed_opaque e 4 v) "abcdef" with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let test_option () =
  let enc e v = Xdr.enc_option e Xdr.enc_string v in
  let dec d = Xdr.dec_option d Xdr.dec_string in
  Alcotest.(check (option string)) "some" (Some "x") (Xdr.decode dec (Xdr.encode enc (Some "x")));
  Alcotest.(check (option string)) "none" None (Xdr.decode dec (Xdr.encode enc None))

let test_hyper_extremes () =
  List.iter
    (fun v ->
      Alcotest.(check int64) "hyper roundtrip" v
        (Xdr.decode Xdr.dec_hyper (Xdr.encode Xdr.enc_hyper v)))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xdeadbeefL ]

(* --- explicit-position encoder machinery --------------------------------- *)

let test_reserve_and_patch () =
  let e = Xdr.encoder () in
  let off = Xdr.reserve e 8 in
  Alcotest.(check int) "reserve returns start offset" 0 off;
  Xdr.enc_uint e 7;
  Xdr.patch_u32 e off 0xdead;
  Xdr.patch_u32 e (off + 4) 0xbeef;
  Alcotest.(check string) "patched words land in place" "0000dead0000beef00000007"
    (hex (Xdr.to_string e));
  (match Xdr.patch_u32 e 12 1 with
   | exception Xdr.Error _ -> ()
   | _ -> Alcotest.fail "patch past the end accepted");
  match Xdr.patch_u32 e 0 0x1_0000_0000 with
  | exception Xdr.Error _ -> ()
  | _ -> Alcotest.fail "out-of-range patch accepted"

let test_encoder_reuse () =
  let e = Xdr.encoder ~size:8 () in
  Xdr.enc_string e "first payload, long enough to grow the buffer";
  let first = Xdr.to_string e in
  Xdr.reset e;
  Xdr.enc_uint e 42;
  Alcotest.(check int) "reset rewinds" 4 (Xdr.length e);
  Alcotest.(check string) "reused buffer encodes cleanly" "0000002a"
    (hex (Xdr.to_string e));
  Alcotest.(check string) "earlier extraction unaffected" "first payload, long enough to grow the buffer"
    (Xdr.decode Xdr.dec_string first)

let test_encoder_of_bytes_growth () =
  (* A lent buffer smaller than the payload: the encoder must grow
     gracefully rather than overrun. *)
  let lent = Bytes.create 8 in
  let e = Xdr.encoder_of_bytes lent in
  let payload = String.make 100 'x' in
  Xdr.enc_string e payload;
  Alcotest.(check string) "grown encoder still roundtrips" payload
    (Xdr.decode Xdr.dec_string (Xdr.to_string e))

let test_enc_raw_verbatim () =
  let e = Xdr.encoder () in
  Xdr.enc_raw e "\x01\x02";
  Xdr.enc_raw e "";
  Xdr.enc_raw e "\x03";
  Alcotest.(check string) "no length words, no padding" "010203"
    (hex (Xdr.to_string e))

let test_array_single_pass_count () =
  (* The count word is patched after one traversal; verify it is exact
     for sizes around the growth boundaries, including empty. *)
  List.iter
    (fun n ->
      let l = List.init n string_of_int in
      Alcotest.(check int)
        (Printf.sprintf "count word for %d elements" n)
        n
        (Xdr.decode
           (fun d -> List.length (Xdr.dec_array d Xdr.dec_string))
           (Xdr.encode (fun e -> Xdr.enc_array e Xdr.enc_string) l)))
    [ 0; 1; 2; 63; 64; 65; 1000 ]

let test_nested_array_roundtrip () =
  let v = [ []; [ 1; 2; 3 ]; [ 4 ]; List.init 50 Fun.id ] in
  Alcotest.(check bool) "array of arrays" true
    (Xdr.decode
       (fun d -> Xdr.dec_array d (fun d -> Xdr.dec_array d Xdr.dec_int))
       (Xdr.encode
          (fun e -> Xdr.enc_array e (fun e -> Xdr.enc_array e Xdr.enc_int))
          v)
     = v)

let prop_int_roundtrip =
  qcheck_case "int32 roundtrip" QCheck.(int_range (-0x8000_0000) 0x7fff_ffff)
    (fun v -> Xdr.decode Xdr.dec_int (Xdr.encode Xdr.enc_int v) = v)

let prop_uint_roundtrip =
  qcheck_case "uint32 roundtrip" QCheck.(int_bound 0xffff_ffff)
    (fun v -> Xdr.decode Xdr.dec_uint (Xdr.encode Xdr.enc_uint v) = v)

let prop_hyper_roundtrip =
  qcheck_case "hyper roundtrip" QCheck.int64
    (fun v -> Xdr.decode Xdr.dec_hyper (Xdr.encode Xdr.enc_hyper v) = v)

let prop_string_roundtrip =
  qcheck_case "string roundtrip" QCheck.string
    (fun s -> Xdr.decode Xdr.dec_string (Xdr.encode Xdr.enc_string s) = s)

let prop_double_roundtrip =
  qcheck_case "double roundtrip" QCheck.float
    (fun f ->
      let f' = Xdr.decode Xdr.dec_double (Xdr.encode Xdr.enc_double f) in
      Int64.bits_of_float f = Int64.bits_of_float f')

let prop_string_list_roundtrip =
  qcheck_case "string array roundtrip" QCheck.(small_list string)
    (fun l ->
      Xdr.decode
        (fun d -> Xdr.dec_array d Xdr.dec_string)
        (Xdr.encode (fun e -> Xdr.enc_array e Xdr.enc_string) l)
      = l)

let prop_mixed_sequence =
  qcheck_case "mixed tuple roundtrip" QCheck.(triple int64 string bool)
    (fun (a, b, c) ->
      let enc e () =
        Xdr.enc_hyper e a;
        Xdr.enc_string e b;
        Xdr.enc_bool e c
      in
      let dec d =
        let a' = Xdr.dec_hyper d in
        let b' = Xdr.dec_string d in
        let c' = Xdr.dec_bool d in
        (a', b', c')
      in
      Xdr.decode dec (Xdr.encode enc ()) = (a, b, c))

let () =
  Alcotest.run "xdr"
    [
      ( "wire format",
        [
          quick "int big-endian encoding" test_int_wire_format;
          quick "int range checks" test_int_range_check;
          quick "string padding" test_string_padding;
          quick "non-zero padding rejected" test_nonzero_padding_rejected;
          quick "bool strictness" test_bool_strictness;
          quick "fixed opaque" test_fixed_opaque;
          quick "option encoding" test_option;
          quick "hyper extremes" test_hyper_extremes;
        ] );
      ( "malformed input",
        [
          quick "every truncation rejected" test_truncation_rejected;
          quick "trailing garbage rejected" test_trailing_garbage_rejected;
          quick "hostile array count rejected" test_array_count_bound;
        ] );
      ( "encoder machinery",
        [
          quick "reserve and patch" test_reserve_and_patch;
          quick "reset reuse" test_encoder_reuse;
          quick "lent buffer growth" test_encoder_of_bytes_growth;
          quick "raw append" test_enc_raw_verbatim;
          quick "single-pass array count" test_array_single_pass_count;
          quick "nested arrays" test_nested_array_roundtrip;
        ] );
      ( "properties",
        [
          prop_int_roundtrip;
          prop_uint_roundtrip;
          prop_hyper_roundtrip;
          prop_string_roundtrip;
          prop_double_roundtrip;
          prop_string_list_roundtrip;
          prop_mixed_sequence;
        ] );
    ]
