(* Fault injection, keepalive, auto-reconnect and graceful drain: the
   robustness layer.  Covers the Faults plan semantics at the channel
   level, corruption through the real TCP-checksum and TLS-MAC paths,
   keepalive death and liveness, the shared-timer call timeouts, close
   races, drain behaviour, and the deterministic chaos scenario: a
   100-op workload over a connection that dies every 10 frames completes
   with reconnect enabled and fails without. *)

open Testutil
module Verror = Ovirt.Verror
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Server_obj = Ovirt.Server_obj
module Admin = Ovirt.Admin_client
module Vm_config = Vmm.Vm_config
module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Faults = Ovnet.Faults
module Chan = Ovnet.Chan
module Rp = Protocol.Remote_protocol

let () = Ovirt.initialize ()

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let with_daemon ?(config = quiet_config) f =
  let name = fresh_name "faultd" in
  let daemon = Daemon.start ~name ~config () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f name daemon)

(* --- the plan itself, at the channel level ------------------------------- *)

let test_delay () =
  let a, b = Chan.pipe () in
  let b = Faults.wrap (Faults.plan [ Faults.Delay 0.05 ]) b in
  let t0 = Unix.gettimeofday () in
  Chan.send a.Chan.outgoing "payload";
  Alcotest.(check string) "delivered" "payload" (Chan.recv b.Chan.incoming);
  Alcotest.(check bool) "delayed" true (Unix.gettimeofday () -. t0 >= 0.04)

let test_blackhole () =
  let a, b = Chan.pipe () in
  let plan = Faults.plan [ Faults.Blackhole ] in
  let b = Faults.wrap plan b in
  Chan.send a.Chan.outgoing "vanishes";
  Alcotest.(check (option string))
    "nothing arrives" None
    (Chan.recv_opt b.Chan.incoming ~timeout_s:0.1);
  Alcotest.(check bool) "counted" true
    (eventually (fun () -> (Faults.stats plan).Faults.frames_blackholed = 1))

let test_drop_after () =
  let a, b = Chan.pipe () in
  let plan = Faults.plan [ Faults.Drop_after 2 ] in
  let b = Faults.wrap plan b in
  Chan.send a.Chan.outgoing "one";
  Alcotest.(check string) "first frame flows" "one" (Chan.recv b.Chan.incoming);
  Chan.send a.Chan.outgoing "two";
  (match Chan.recv b.Chan.incoming with
   | exception Chan.Closed -> ()
   | msg -> Alcotest.failf "second frame delivered (%S), connection not killed" msg);
  (* The kill closes both directions: the peer cannot send either. *)
  Alcotest.(check bool) "peer side dies" true
    (eventually (fun () ->
         match Chan.send a.Chan.outgoing "three" with
         | exception Chan.Closed -> true
         | () -> false));
  Alcotest.(check int) "kill counted" 1 (Faults.stats plan).Faults.connections_killed

let test_corrupt_deterministic () =
  let corrupted_frame seed =
    let a, b = Chan.pipe () in
    let b = Faults.wrap (Faults.plan ~seed [ Faults.Corrupt_frame 1 ]) b in
    Chan.send a.Chan.outgoing "sixteen byte msg";
    Chan.recv b.Chan.incoming
  in
  let x = corrupted_frame 42 and y = corrupted_frame 42 in
  Alcotest.(check string) "same seed, same corruption" x y;
  Alcotest.(check bool) "actually corrupted" true (x <> "sixteen byte msg");
  let bits_flipped =
    let orig = "sixteen byte msg" in
    let count = ref 0 in
    String.iteri
      (fun i c ->
        let d = Char.code c lxor Char.code orig.[i] in
        for bit = 0 to 7 do
          if d land (1 lsl bit) <> 0 then incr count
        done)
      x;
    !count
  in
  Alcotest.(check int) "exactly one bit" 1 bits_flipped

let test_refuse_connect () =
  let addr = fresh_name "refuser" in
  let plan = Faults.plan [ Faults.Refuse_connect ] in
  let listener = Netsim.listen ~faults:plan addr (fun _ -> ()) in
  Fun.protect
    ~finally:(fun () -> Netsim.close_listener listener)
    (fun () ->
      (match Netsim.connect addr Transport.Unix_sock with
       | exception Netsim.Connection_refused _ -> ()
       | _ -> Alcotest.fail "refused listener accepted a connection");
      Alcotest.(check int) "refusal counted" 1
        (Faults.stats plan).Faults.connects_refused)

(* --- corruption through the real transport integrity paths --------------- *)

let echo rpc msg =
  Result.map Rp.dec_string_body
    (Rpc_client.call rpc ~procedure:(Rp.proc_to_int Rp.Proc_echo)
       ~body:(Rp.enc_string_body msg) ())

let mgmt_rpc ?faults ?keepalive daemon ~kind =
  vok
    (Rpc_client.connect ~address:(Daemon.mgmt_address daemon) ~kind
       ~program:Rp.program ~version:Rp.version ?faults ?keepalive ())

let expect_corrupt_failure rpc daemon =
  (match echo rpc "second" with
   | Ok reply -> Alcotest.failf "corrupted reply delivered: %S" reply
   | Error e ->
     Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure);
     Alcotest.(check bool)
       ("mentions corruption: " ^ e.Verror.message)
       true
       (let lower = String.lowercase_ascii e.Verror.message in
        (* either the receiver saw the corrupt frame, or the daemon side
           noticed first and the connection just died *)
        contains lower "corrupt"
        || contains lower "closed"));
  Alcotest.(check bool) "client closed" true (Rpc_client.is_closed rpc);
  (* The daemon reaps its side of the poisoned connection. *)
  match Daemon.find_server daemon "libvirtd" with
  | None -> Alcotest.fail "no libvirtd server"
  | Some srv ->
    Alcotest.(check bool) "daemon-side client reaped" true
      (eventually (fun () -> fst (Server_obj.client_counts srv) = 0))

let test_tcp_checksum_corruption () =
  with_daemon (fun _ daemon ->
      (* Client-side incoming frames over TCP: 1 = first reply.  Let one
         echo through, corrupt the second reply's checksummed bytes. *)
      let rpc =
        mgmt_rpc daemon ~kind:Transport.Tcp
          ~faults:(Faults.plan [ Faults.Corrupt_frame 2 ])
      in
      Alcotest.(check string) "first echo intact" "first" (vok (echo rpc "first"));
      expect_corrupt_failure rpc daemon)

let test_tls_mac_corruption () =
  with_daemon (fun _ daemon ->
      (* Over TLS the client's frame 1 is the hello reply, frame 2 the
         first sealed reply: corrupting frame 3 breaks the second reply's
         MAC. *)
      let rpc =
        mgmt_rpc daemon ~kind:Transport.Tls
          ~faults:(Faults.plan [ Faults.Corrupt_frame 3 ])
      in
      Alcotest.(check string) "first echo intact" "first" (vok (echo rpc "first"));
      expect_corrupt_failure rpc daemon)

(* --- keepalive ------------------------------------------------------------ *)

let test_keepalive_detects_dead_peer () =
  with_daemon (fun _ daemon ->
      (* A blackhole swallows every reply (and pong): the keepalive timer
         must declare the peer dead after interval x count and fail the
         in-flight call promptly. *)
      let rpc =
        mgmt_rpc daemon ~kind:Transport.Unix_sock
          ~faults:(Faults.plan [ Faults.Blackhole ])
          ~keepalive:{ Rpc_client.ka_interval = 0.05; ka_count = 2 }
      in
      let t0 = Unix.gettimeofday () in
      (match echo rpc "into the void" with
       | Ok _ -> Alcotest.fail "blackholed call returned"
       | Error e ->
         Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure);
         Alcotest.(check bool)
           ("keepalive blamed: " ^ e.Verror.message)
           true
           (contains e.Verror.message "keepalive"));
      Alcotest.(check bool) "prompt death" true (Unix.gettimeofday () -. t0 < 2.0);
      Alcotest.(check bool) "closed" true (Rpc_client.is_closed rpc))

let test_keepalive_keeps_idle_connection_alive () =
  with_daemon (fun _ daemon ->
      (* Idle well past interval x count: only answered pings keep the
         client from declaring the (healthy) daemon dead. *)
      let rpc =
        mgmt_rpc daemon ~kind:Transport.Unix_sock
          ~keepalive:{ Rpc_client.ka_interval = 0.05; ka_count = 2 }
      in
      Thread.delay 0.4;
      Alcotest.(check bool) "still open" false (Rpc_client.is_closed rpc);
      Alcotest.(check string) "still works" "alive" (vok (echo rpc "alive"));
      Rpc_client.close rpc)

(* --- shared timer: call timeouts ------------------------------------------ *)

let test_call_timeout_without_watchdog_threads () =
  let addr = fresh_name "tarpit" in
  let listener = Netsim.listen addr (fun _conn -> Thread.delay 5.0) in
  Fun.protect
    ~finally:(fun () -> Netsim.close_listener listener)
    (fun () ->
      let rpc =
        vok
          (Rpc_client.connect ~address:addr ~kind:Transport.Unix_sock
             ~program:Rp.program ~version:Rp.version ())
      in
      let t0 = Unix.gettimeofday () in
      (match
         Rpc_client.call rpc ~procedure:(Rp.proc_to_int Rp.Proc_echo)
           ~body:(Rp.enc_string_body "slow") ~timeout_s:0.1 ()
       with
       | Ok _ -> Alcotest.fail "tarpit replied"
       | Error e ->
         Alcotest.(check bool)
           ("timed out: " ^ e.Verror.message)
           true
           (contains e.Verror.message "timed out"));
      Alcotest.(check bool) "prompt" true (Unix.gettimeofday () -. t0 < 1.0);
      (* The timeout fails the one call, not the connection. *)
      Alcotest.(check bool) "connection survives" false (Rpc_client.is_closed rpc);
      Alcotest.(check int) "no pending leak" 0 (Rpc_client.pending_calls rpc);
      Rpc_client.close rpc)

let test_close_is_idempotent_and_race_free () =
  with_daemon (fun _ daemon ->
      let rpc = mgmt_rpc daemon ~kind:Transport.Unix_sock in
      Alcotest.(check string) "works" "x" (vok (echo rpc "x"));
      let closers =
        List.init 5 (fun _ -> Thread.create (fun () -> Rpc_client.close rpc) ())
      in
      List.iter Thread.join closers;
      Rpc_client.close rpc;
      Alcotest.(check bool) "closed" true (Rpc_client.is_closed rpc);
      match echo rpc "after close" with
      | Ok _ -> Alcotest.fail "call on closed connection succeeded"
      | Error e ->
        Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure))

(* --- drain ---------------------------------------------------------------- *)

let test_drain_refuses_calls_but_answers_pings () =
  with_daemon (fun _ daemon ->
      let srv = Option.get (Daemon.find_server daemon "libvirtd") in
      let rpc =
        mgmt_rpc daemon ~kind:Transport.Unix_sock
          ~keepalive:{ Rpc_client.ka_interval = 0.05; ka_count = 2 }
      in
      Alcotest.(check string) "before drain" "ok" (vok (echo rpc "ok"));
      Server_obj.set_draining srv true;
      (match echo rpc "during drain" with
       | Ok _ -> Alcotest.fail "draining server accepted a call"
       | Error e ->
         Alcotest.(check bool)
           ("refused with operation invalid: " ^ Verror.to_string e)
           true
           (e.Verror.code = Verror.Operation_invalid));
      (* Well past interval x count: pings must still be answered, so the
         client does not declare the draining daemon dead. *)
      Thread.delay 0.4;
      Alcotest.(check bool) "kept alive through drain" false (Rpc_client.is_closed rpc);
      Server_obj.set_draining srv false;
      Alcotest.(check string) "back in service" "ok" (vok (echo rpc "ok"));
      Rpc_client.close rpc)

let test_draining_server_refuses_new_clients () =
  with_daemon (fun _ daemon ->
      let srv = Option.get (Daemon.find_server daemon "libvirtd") in
      Server_obj.set_draining srv true;
      let conn = Netsim.connect (Daemon.mgmt_address daemon) Transport.Unix_sock in
      (* accept_client closes the transport on refusal. *)
      Alcotest.(check bool) "connection dropped" true
        (eventually (fun () ->
             match Transport.recv conn with
             | exception Transport.Closed -> true
             | _ -> false));
      Alcotest.(check bool) "no client registered" true
        (eventually (fun () -> fst (Server_obj.client_counts srv) = 0)))

let test_admin_drain_end_to_end () =
  with_daemon (fun name daemon ->
      let conn = vok (Connect.open_uri (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "dr") name)) in
      Alcotest.(check bool) "live before drain" true
        (List.length (vok (Connect.list_domains conn)) >= 0);
      let admin = vok (Admin.connect ~daemon:name ()) in
      vok (Admin.drain admin);
      (* The drain runs in the background; once it completes the listener
         is gone and every connection is closed. *)
      Alcotest.(check bool) "listener closed" true
        (eventually (fun () ->
             match Connect.open_uri (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "dr") name) with
             | Error _ -> true
             | Ok conn2 ->
               Connect.close conn2;
               false));
      Alcotest.(check bool) "existing connections closed" true
        (eventually (fun () -> Result.is_error (Connect.list_domains conn)));
      Admin.close admin;
      ignore daemon)

(* --- netsim handler failures are logged ----------------------------------- *)

let test_handler_exception_logged () =
  let logger =
    Vlog.create ~level:Vlog.Debug
      ~outputs:[ { Vlog.min_priority = Vlog.Warn; sink = Vlog.File "netsim-log" } ]
      ()
  in
  Netsim.set_logger logger;
  Fun.protect
    ~finally:(fun () -> Netsim.set_logger (Vlog.create ~level:Vlog.Warn ()))
    (fun () ->
      let addr = fresh_name "boom" in
      let listener = Netsim.listen addr (fun _conn -> failwith "kaboom") in
      Fun.protect
        ~finally:(fun () -> Netsim.close_listener listener)
        (fun () ->
          let conn = Netsim.connect addr Transport.Unix_sock in
          Alcotest.(check bool) "warning logged" true
            (eventually (fun () ->
                 let log = Vlog.file_contents logger "netsim-log" in
                 contains log "kaboom"
                 && contains log addr));
          Transport.close conn))

(* --- the chaos scenario ---------------------------------------------------- *)

(* At-least-once executor: on failure, check whether the side effect
   nevertheless took (the connection may have died after the daemon
   committed the operation), else retry.  This is the client half of the
   "mutating calls are not blindly retried" contract: the driver restores
   the connection but leaves the redo decision here, where the desired
   state is known. *)
let rec at_least_once ~retries op verify =
  match op () with
  | Ok () -> true
  | Error _ when verify () -> true
  | Error _ when retries > 0 ->
    Thread.delay 0.01;
    at_least_once ~retries:(retries - 1) op verify
  | Error _ -> false

(* One workload cycle: define, start, observe, destroy — 4 operations.
   Returns false as soon as an operation cannot be completed. *)
let chaos_cycle conn i =
  let name = Printf.sprintf "chaos-vm-%d" i in
  let xml = Vmm.Domxml.to_xml ~virt_type:"test" (Vm_config.make ~memory_kib:(8 * 1024) name) in
  let lookup () = Domain.lookup_by_name conn name in
  let define_ok =
    (* define of the same config is idempotent daemon-side *)
    at_least_once ~retries:5
      (fun () -> Result.map ignore (Domain.define_xml conn xml))
      (fun () -> Result.is_ok (lookup ()))
  in
  define_ok
  &&
  match lookup () with
  | Error _ -> false
  | Ok dom ->
    let is_active () = Domain.is_active dom in
    at_least_once ~retries:5
      (fun () -> Domain.create dom)
      (fun () -> is_active () = Ok true)
    && at_least_once ~retries:5
         (fun () -> Result.map ignore (Connect.list_domains conn))
         (fun () -> false)
    && at_least_once ~retries:5
         (fun () -> Domain.destroy dom)
         (fun () -> is_active () = Ok false)

let chaos_uri ~resilient name =
  if resilient then
    Printf.sprintf
      "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005&reconnect_max_delay=0.05&reconnect_seed=7&keepalive=0.05"
      (fresh_name "chaos") name
  else Printf.sprintf "test+unix://%s/?daemon=%s" (fresh_name "chaos") name

let run_chaos_workload ~resilient name =
  Drv_remote.reset_stats ();
  match Connect.open_uri (chaos_uri ~resilient name) with
  | Error _ -> (0, 25)
  | Ok conn ->
    let completed = ref 0 in
    (try
       for i = 1 to 25 do
         if chaos_cycle conn i then incr completed else raise Exit
       done
     with Exit -> ());
    (try Connect.close conn with _ -> ());
    (!completed, 25)

let test_chaos_workload_with_reconnect_completes () =
  with_daemon (fun name daemon ->
      (* Every accepted connection dies when its 10th frame arrives:
         handshake (identity, open, event-register) plus a handful of
         calls, then the knife.  Reconnect must absorb every cut. *)
      Alcotest.(check bool) "plan attached" true
        (Netsim.set_listener_faults (Daemon.mgmt_address daemon)
           (Some (Faults.plan ~seed:11 [ Faults.Drop_after 10 ])));
      let completed, total = run_chaos_workload ~resilient:true name in
      let stats = Drv_remote.stats () in
      Alcotest.(check int) "every cycle completed" total completed;
      Alcotest.(check bool)
        (Printf.sprintf "reconnected (%d times)" stats.Drv_remote.st_reconnects)
        true (stats.Drv_remote.st_reconnects >= 3);
      Alcotest.(check int) "no budget exhaustion" 0 stats.Drv_remote.st_giveups;
      (* Bounded retries: the transparent (idempotent) retries cannot
         exceed one per reconnect under this workload. *)
      Alcotest.(check bool)
        (Printf.sprintf "retries bounded (%d)" stats.Drv_remote.st_retried_calls)
        true
        (stats.Drv_remote.st_retried_calls <= stats.Drv_remote.st_reconnects * 2);
      Alcotest.(check bool) "recovery latencies recorded" true
        (List.length stats.Drv_remote.st_recovery_latencies
         = stats.Drv_remote.st_reconnects);
      List.iter
        (fun l -> Alcotest.(check bool) "recovery under a second" true (l < 1.0))
        stats.Drv_remote.st_recovery_latencies)

let test_chaos_workload_without_reconnect_fails () =
  with_daemon (fun name daemon ->
      Alcotest.(check bool) "plan attached" true
        (Netsim.set_listener_faults (Daemon.mgmt_address daemon)
           (Some (Faults.plan ~seed:11 [ Faults.Drop_after 10 ])));
      let completed, total = run_chaos_workload ~resilient:false name in
      Alcotest.(check bool)
        (Printf.sprintf "workload broke (%d/%d cycles)" completed total)
        true (completed < total);
      Alcotest.(check int) "and never reconnected" 0
        (Drv_remote.stats ()).Drv_remote.st_reconnects)

let test_reconnect_budget_exhaustion () =
  with_daemon (fun name daemon ->
      Drv_remote.reset_stats ();
      let conn =
        vok
          (Connect.open_uri
             (Printf.sprintf
                "test+unix://%s/?daemon=%s&reconnect=2&reconnect_delay=0.005"
                (fresh_name "exh") name))
      in
      Alcotest.(check bool) "works while daemon lives" true
        (Result.is_ok (Connect.list_domains conn));
      (* Kill the daemon outright: every reconnect attempt is refused. *)
      Daemon.stop daemon;
      (match Connect.list_domains conn with
       | Ok _ -> Alcotest.fail "call succeeded against a stopped daemon"
       | Error e ->
         Alcotest.(check bool) "rpc failure" true (e.Verror.code = Verror.Rpc_failure));
      let stats = Drv_remote.stats () in
      Alcotest.(check int) "gave up once" 1 stats.Drv_remote.st_giveups;
      Alcotest.(check bool) "attempts made" true
        (stats.Drv_remote.st_reconnect_attempts >= 2);
      (* Defunct: no more reconnect attempts, calls fail fast. *)
      let t0 = Unix.gettimeofday () in
      Alcotest.(check bool) "defunct fails" true
        (Result.is_error (Connect.list_domains conn));
      Alcotest.(check bool) "defunct fails fast" true
        (Unix.gettimeofday () -. t0 < 0.5);
      Alcotest.(check int) "no further attempts" stats.Drv_remote.st_reconnect_attempts
        (Drv_remote.stats ()).Drv_remote.st_reconnect_attempts)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          quick "delay" test_delay;
          quick "blackhole" test_blackhole;
          quick "drop-after" test_drop_after;
          quick "corrupt-deterministic" test_corrupt_deterministic;
          quick "refuse-connect" test_refuse_connect;
        ] );
      ( "integrity",
        [
          quick "tcp-checksum" test_tcp_checksum_corruption;
          quick "tls-mac" test_tls_mac_corruption;
        ] );
      ( "keepalive",
        [
          quick "detects-dead-peer" test_keepalive_detects_dead_peer;
          quick "keeps-idle-alive" test_keepalive_keeps_idle_connection_alive;
        ] );
      ( "client",
        [
          quick "call-timeout" test_call_timeout_without_watchdog_threads;
          quick "close-race" test_close_is_idempotent_and_race_free;
        ] );
      ( "drain",
        [
          quick "refuses-calls-answers-pings" test_drain_refuses_calls_but_answers_pings;
          quick "refuses-new-clients" test_draining_server_refuses_new_clients;
          quick "admin-end-to-end" test_admin_drain_end_to_end;
        ] );
      ("logging", [ quick "handler-exception-logged" test_handler_exception_logged ]);
      ( "chaos",
        [
          quick "with-reconnect-completes" test_chaos_workload_with_reconnect_completes;
          quick "without-reconnect-fails" test_chaos_workload_without_reconnect_fails;
          quick "budget-exhaustion" test_reconnect_budget_exhaustion;
        ] );
    ]
