(* Benchmark harness: regenerates every table and figure of the
   reconstructed evaluation (see DESIGN.md §4 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- table2 fig4 ...   # a subset

   Absolute numbers are simulator numbers; the claims under test are the
   *shapes* stated in DESIGN.md (who wins, scaling, crossovers). *)

open Bench_util
module Connect = Ovirt.Connect
module Domain = Ovirt.Domain
module Driver = Ovirt.Driver
module Capabilities = Ovirt.Capabilities
module Admin = Ovirt.Admin_client
module Daemon = Ovirt.Daemon
module Daemon_config = Ovirt.Daemon_config
module Agent = Ovirt.Guest_agent_client
module Vm_config = Vmm.Vm_config
module Guest_image = Vmm.Guest_image
module Tlslike = Ovnet.Tlslike
module Transport = Ovnet.Transport
module Rp = Protocol.Remote_protocol
module Rpc_packet = Ovrpc.Rpc_packet
module Tp = Ovrpc.Typed_params
module Events = Ovirt.Events
module Server_obj = Ovirt.Server_obj

let () = Ovirt.initialize ()

let quiet_config =
  {
    Daemon_config.default with
    Daemon_config.log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Null } ];
  }

let mib n = n * 1024

type driver_kit = {
  k_label : string;
  k_uri : unit -> string;
  k_virt : string;
  k_os : Vm_config.os_kind;
}

let kits =
  [
    {
      k_label = "test";
      k_uri = (fun () -> "test://" ^ fresh "bt" ^ "/");
      k_virt = "test";
      k_os = Vm_config.Hvm;
    };
    {
      k_label = "qemu";
      k_uri = (fun () -> "qemu://" ^ fresh "bq" ^ "/system");
      k_virt = "kvm";
      k_os = Vm_config.Hvm;
    };
    {
      k_label = "xen";
      k_uri = (fun () -> "xen://" ^ fresh "bx" ^ "/");
      k_virt = "xen";
      k_os = Vm_config.Paravirt;
    };
    {
      k_label = "lxc";
      k_uri = (fun () -> "lxc://" ^ fresh "bl" ^ "/");
      k_virt = "lxc";
      k_os = Vm_config.Container_exe;
    };
    {
      k_label = "esx";
      k_uri = (fun () -> "esx://root@" ^ fresh "be" ^ "/?password=esx");
      k_virt = "vmware";
      k_os = Vm_config.Hvm;
    };
  ]

let define_domain kit conn ?(memory_kib = mib 8) name =
  let cfg = Vm_config.make ~os:kit.k_os ~memory_kib name in
  ok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:kit.k_virt cfg))

(* ------------------------------------------------------------------ *)
(* E1 / Table 1: hypervisor feature matrix                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 (E1): driver feature matrix";
  let features = Capabilities.all_features in
  let headers = "feature" :: List.map (fun k -> k.k_label) kits in
  let caps =
    List.map (fun kit -> ok (Connect.capabilities (ok (Connect.open_uri (kit.k_uri ()))))) kits
  in
  let rows =
    List.map
      (fun feature ->
        Capabilities.feature_name feature
        :: List.map
             (fun cap -> if Capabilities.supports cap feature then "yes" else "-")
             caps)
      features
  in
  table headers rows;
  subsection
    (Printf.sprintf "stateful drivers: %s | stateless: %s"
       (String.concat ", "
          (List.filter_map
             (fun (kit, cap) ->
               if cap.Capabilities.stateful then Some kit.k_label else None)
             (List.combine kits caps)))
       (String.concat ", "
          (List.filter_map
             (fun (kit, cap) ->
               if cap.Capabilities.stateful then None else Some kit.k_label)
             (List.combine kits caps))))

(* ------------------------------------------------------------------ *)
(* E2 / Table 2: management-operation latency per driver (direct)      *)
(* ------------------------------------------------------------------ *)

let op_cells label conn kit =
  (* define+undefine cycle *)
  let define_cycle =
    measure_ns (label ^ "/define") (fun () ->
        let dom = define_domain kit conn (fresh "cyc") in
        ok (Domain.undefine dom))
  in
  (* start+destroy cycle on a fixed definition *)
  let dom = define_domain kit conn (fresh "fix") in
  let start_cycle =
    measure_ns (label ^ "/start") (fun () ->
        ok (Domain.create dom);
        ok (Domain.destroy dom))
  in
  (* reads on a running domain *)
  let running = define_domain kit conn (fresh "run") in
  ok (Domain.create running);
  let get_info = measure_ns (label ^ "/info") (fun () -> ignore (ok (Domain.get_info running))) in
  let dump_xml = measure_ns (label ^ "/xml") (fun () -> ignore (ok (Domain.xml_desc running))) in
  let list = measure_ns (label ^ "/list") (fun () -> ignore (ok (Connect.list_domains conn))) in
  ok (Domain.destroy running);
  [ pp_ns define_cycle; pp_ns start_cycle; pp_ns get_info; pp_ns dump_xml; pp_ns list ]

let table2 () =
  section "Table 2 (E2): operation latency per driver (driver-native path)";
  let rows =
    List.map
      (fun kit ->
        let conn = ok (Connect.open_uri (kit.k_uri ())) in
        kit.k_label :: op_cells kit.k_label conn kit)
      kits
  in
  table
    [ "driver"; "define+undef"; "start+destroy"; "get-info"; "dump-xml"; "list" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 / Table 3: local vs remote (daemon) operation latency            *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3 (E3): direct vs daemon-tunnelled latency (test driver)";
  let daemon_name = fresh "bd" in
  let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
  let kit = List.hd kits in
  let variants =
    [
      ("direct", fun () -> "test://" ^ fresh "d" ^ "/");
      ( "remote/unix",
        fun () -> Printf.sprintf "test+unix://%s/?daemon=%s" (fresh "ru") daemon_name );
      ( "remote/tcp",
        fun () -> Printf.sprintf "test+tcp://%s/?daemon=%s" (fresh "rt") daemon_name );
      ( "remote/tls",
        fun () -> Printf.sprintf "test+tls://%s/?daemon=%s" (fresh "rs") daemon_name );
    ]
  in
  let rows =
    List.map
      (fun (label, uri) ->
        let conn = ok (Connect.open_uri (uri ())) in
        label :: op_cells label conn kit)
      variants
  in
  table
    [ "path"; "define+undef"; "start+destroy"; "get-info"; "dump-xml"; "list" ]
    rows;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E4 / Figure 1: transport overhead vs payload size                   *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1 (E4): echo RPC round-trip vs payload size";
  let daemon_name = fresh "bd" in
  let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
  let sizes = [ 64; 1024; 16 * 1024; 64 * 1024; 256 * 1024 ] in
  let transports =
    [ ("unix", Transport.Unix_sock); ("tcp", Transport.Tcp); ("tls", Transport.Tls) ]
  in
  let clients =
    List.map
      (fun (label, kind) ->
        ( label,
          match
            Rpc_client.connect ~address:(daemon_name ^ "-sock") ~kind
              ~program:Rp.program ~version:Rp.version ()
          with
          | Ok c -> c
          | Error e -> failwith (Ovirt.Verror.to_string e) ))
      transports
  in
  let rows =
    List.map
      (fun size ->
        let payload = String.make size 'x' in
        string_of_int size
        :: List.map
             (fun (label, client) ->
               pp_ns
                 (measure_ns ~quota:0.4
                    (Printf.sprintf "echo/%s/%d" label size)
                    (fun () ->
                      match
                        Rpc_client.call client
                          ~procedure:(Rp.proc_to_int Rp.Proc_echo) ~body:payload ()
                      with
                      | Ok _ -> ()
                      | Error e -> failwith (Ovirt.Verror.to_string e))))
             clients)
      sizes
  in
  table ("payload B" :: List.map fst transports) rows;
  List.iter (fun (_, c) -> Rpc_client.close c) clients;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E5 / Figure 2: throughput vs concurrent clients                     *)
(* ------------------------------------------------------------------ *)

(* A node with one big domain so every call does real serialization
   work on a daemon worker. *)
let prepare_busy_node daemon_name =
  let node = fresh "load" in
  (* 300 us of simulated hypervisor latency per call: the worker blocks,
     as it would on a real monitor socket, so pool sizing matters. *)
  let conn =
    ok
      (Connect.open_uri
         (Printf.sprintf "test+unix://%s/?daemon=%s&latency_us=300" node daemon_name))
  in
  let disks =
    List.init 16 (fun i ->
        Vm_config.
          {
            source_path = Printf.sprintf "/imgs/d%d.img" i;
            target_dev = Printf.sprintf "vd%c" (Char.chr (Char.code 'a' + i));
            disk_format = "qcow2";
            readonly = false;
          })
  in
  let cfg = Vm_config.make ~memory_kib:(mib 8) ~disks (fresh "big") in
  let dom = ok (Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"test" cfg)) in
  Connect.close conn;
  (node, Domain.name dom)

let throughput_at daemon_name node dom_name n_clients =
  let conns =
    List.init n_clients (fun _ ->
        ok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s&latency_us=300" node
                daemon_name)))
  in
  let conns_arr = Array.of_list conns in
  let doms =
    Array.map (fun conn -> ok (Domain.lookup_by_name conn dom_name)) conns_arr
  in
  let ops =
    measure_throughput ~n_threads:n_clients ~duration_s:0.3 (fun i ->
        ignore (ok (Domain.xml_desc doms.(i))))
  in
  List.iter Connect.close conns;
  ops

let fig2 () =
  section "Figure 2 (E5): throughput vs concurrent clients (8-worker pool)";
  let daemon_name = fresh "bd" in
  (* prio_workers = 0: reads are high-priority-eligible, and this
     experiment studies the ordinary pool. *)
  let config =
    { quiet_config with Daemon_config.min_workers = 8; max_workers = 8; prio_workers = 0 }
  in
  let daemon = Daemon.start ~name:daemon_name ~config () in
  let node, dom_name = prepare_busy_node daemon_name in
  let rows =
    List.map
      (fun n ->
        let ops = throughput_at daemon_name node dom_name n in
        [ string_of_int n; pp_ops ops ^ " ops/s" ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  table [ "clients"; "dump-xml throughput" ] rows;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E6 / Figure 3: throughput vs workerpool size (runtime admin resize) *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Figure 3 (E6): throughput vs maxWorkers at 16 clients (admin resize)";
  let daemon_name = fresh "bd" in
  let config =
    { quiet_config with Daemon_config.min_workers = 1; max_workers = 1; prio_workers = 0 }
  in
  let daemon = Daemon.start ~name:daemon_name ~config () in
  let node, dom_name = prepare_busy_node daemon_name in
  let admin = ok (Admin.connect ~daemon:daemon_name ()) in
  let srv = ok (Admin.lookup_server admin "libvirtd") in
  let rows =
    List.map
      (fun workers ->
        ok
          (Admin.set_threadpool srv
             ~min_workers:(min workers 4)
             ~max_workers:workers ());
        let ops = throughput_at daemon_name node dom_name 16 in
        [ string_of_int workers; pp_ops ops ^ " ops/s" ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  table [ "maxWorkers"; "dump-xml throughput (16 clients)" ] rows;
  Admin.close admin;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E7 / Table 4: non-intrusive vs intrusive management                 *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4 (E7): non-intrusive (hypervisor API) vs intrusive (in-guest agent)";
  let kit = List.hd kits in
  let conn = ok (Connect.open_uri (kit.k_uri ())) in
  let name = fresh "cmp" in
  let dom = define_domain kit conn ~memory_kib:(mib 64) name in
  ok (Domain.create dom);
  (* deployment *)
  let (), install_s = time_once (fun () -> ok (Agent.install conn name)) in
  (* query latency *)
  let hv_info = measure_ns "hv/get-info" (fun () -> ignore (ok (Domain.get_info dom))) in
  let ag_info =
    measure_ns "agent/guest-info" (fun () -> ignore (ok (Agent.guest_info conn name)))
  in
  (* availability while paused *)
  ok (Domain.suspend dom);
  let hv_paused = Result.is_ok (Domain.get_info dom) in
  let ag_paused = Result.is_ok (Agent.guest_info conn name) in
  ok (Domain.resume dom);
  (* interference: pages dirtied by 100 status queries *)
  let src_ops = ok (Connect.ops conn) in
  let ms = ok ((Option.get src_ops.Driver.migrate_begin) name) in
  let img = ms.Driver.mig_image in
  ms.Driver.mig_abort ();
  let drain () = List.iter (fun i -> ignore (Guest_image.transfer_page img i)) (Guest_image.dirty_pages img) in
  drain ();
  for _ = 1 to 100 do
    ignore (ok (Domain.get_info dom))
  done;
  let hv_dirty = Guest_image.dirty_count img in
  drain ();
  for _ = 1 to 100 do
    ignore (ok (Agent.guest_info conn name))
  done;
  let ag_dirty = Guest_image.dirty_count img in
  table
    [ "criterion"; "non-intrusive"; "intrusive (agent)" ]
    [
      [ "per-guest deployment"; "none";
        Printf.sprintf "%s install" (pp_ns (install_s *. 1e9)) ];
      [ "status query latency"; pp_ns hv_info; pp_ns ag_info ];
      [ "works on paused guest"; (if hv_paused then "yes" else "no");
        (if ag_paused then "yes" else "no") ];
      [ "guest pages dirtied / 100 queries"; string_of_int hv_dirty;
        string_of_int ag_dirty ];
      [ "in-guest command execution"; "not possible"; "guest-exec (exit 0)" ];
    ]

(* ------------------------------------------------------------------ *)
(* E8 / Figure 4: live migration time vs memory size and dirty rate    *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4 (E8): migration vs memory size (page scale 1 B : 1 KiB)";
  let rows = ref [] in
  List.iter
    (fun kit ->
      List.iter
        (fun memory_mib ->
          List.iter
            (fun (load_label, rate) ->
              let src = ok (Connect.open_uri (kit.k_uri ())) in
              let dst = ok (Connect.open_uri (kit.k_uri ())) in
              let name = fresh "mig" in
              let dom = define_domain kit src ~memory_kib:(mib memory_mib) name in
              ok (Domain.create dom);
              (* reach the live image so the hook can dirty it *)
              let src_ops = ok (Connect.ops src) in
              let ms = ok ((Option.get src_ops.Driver.migrate_begin) name) in
              let img = ms.Driver.mig_image in
              ms.Driver.mig_abort ();
              (* A busy guest keeps dirtying for the whole migration, so
                 precopy hits the round cap and pays a downtime tail. *)
              let dirty_hook round =
                if rate > 0.0 then
                  Guest_image.dirty_randomly img ~rate ~seed:(round * 31)
              in
              let (_, stats), seconds =
                time_once (fun () -> ok (Domain.migrate dom ~dest:dst ~dirty_hook ()))
              in
              rows :=
                [
                  kit.k_label;
                  Printf.sprintf "%d MiB" memory_mib;
                  load_label;
                  Printf.sprintf "%.2f ms" (seconds *. 1000.);
                  string_of_int stats.Domain.pages_transferred;
                  string_of_int stats.Domain.rounds;
                  string_of_int stats.Domain.downtime_pages;
                ]
                :: !rows)
            [ ("idle", 0.0); ("busy", 0.05) ])
        [ 64; 128; 256; 512 ])
    [ List.nth kits 1; List.nth kits 2 ];
  table
    [ "driver"; "memory"; "guest"; "total time"; "pages"; "rounds"; "downtime pages" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E9 / Figure 5: enumeration cost vs number of domains                *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5 (E9): enumeration and lookup vs defined domains (test driver)";
  let rows =
    List.map
      (fun count ->
        let conn = ok (Connect.open_uri ("test://" ^ fresh "enum" ^ "/")) in
        let kit = List.hd kits in
        for _ = 1 to count do
          ignore (define_domain kit conn (fresh "e"))
        done;
        let middle = fresh "probe" in
        ignore (define_domain kit conn middle);
        let list_defined =
          measure_ns
            (Printf.sprintf "list/%d" count)
            (fun () -> ignore (ok (Connect.list_defined_domains conn)))
        in
        let lookup =
          measure_ns
            (Printf.sprintf "lookup/%d" count)
            (fun () -> ignore (ok (Domain.lookup_by_name conn middle)))
        in
        [ string_of_int (count + 2); pp_ns list_defined; pp_ns lookup ])
      [ 10; 100; 500; 1000; 2000 ]
  in
  table [ "domains"; "list-defined"; "lookup-by-name" ] rows

(* ------------------------------------------------------------------ *)
(* E10 / Table 5: logging-subsystem overhead                           *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table 5 (E10): daemon op latency under logging configurations";
  let daemon_name = fresh "bd" in
  let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
  let logger = Daemon.logger daemon in
  let admin = ok (Admin.connect ~daemon:daemon_name ()) in
  let conn =
    ok
      (Connect.open_uri
         (Printf.sprintf "test+unix://%s/?daemon=%s" (fresh "log") daemon_name))
  in
  let dom = ok (Domain.lookup_by_name conn "test") in
  let configs =
    [
      ("level=error (production)", Vlog.Error, "", "1:null");
      ("level=debug, no filters", Vlog.Debug, "", "1:null");
      ("level=debug + filter rpc", Vlog.Debug, "4:daemon.rpc", "1:null");
      ("level=debug -> file", Vlog.Debug, "", "1:file:/var/log/bench.log");
    ]
  in
  let rows =
    List.map
      (fun (label, level, filters, outputs) ->
        ok (Admin.set_logging_level admin level);
        ok (Admin.set_logging_filters admin filters);
        ok (Admin.set_logging_outputs admin outputs);
        Vlog.reset_counters logger;
        let latency =
          measure_ns ("log/" ^ label) (fun () -> ignore (ok (Domain.get_info dom)))
        in
        [
          label;
          pp_ns latency;
          string_of_int (Vlog.emitted_count logger);
          string_of_int (Vlog.dropped_count logger);
        ])
      configs
  in
  table [ "configuration"; "get-info latency"; "emitted"; "dropped" ] rows;
  Admin.close admin;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E11 / Figure 6: administration-interface latency under load          *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Figure 6 (E11): admin operation latency, idle vs loaded daemon";
  let daemon_name = fresh "bd" in
  let config = { quiet_config with Daemon_config.min_workers = 4; max_workers = 4 } in
  let daemon = Daemon.start ~name:daemon_name ~config () in
  let node, dom_name = prepare_busy_node daemon_name in
  let admin = ok (Admin.connect ~daemon:daemon_name ()) in
  let srv = ok (Admin.lookup_server admin "libvirtd") in
  let measure_admin label =
    [
      ( "srv-threadpool-info",
        measure_ns (label ^ "/tpinfo") (fun () -> ignore (ok (Admin.threadpool_info srv)))
      );
      ( "srv-clients-list",
        measure_ns (label ^ "/clients") (fun () -> ignore (ok (Admin.list_clients srv)))
      );
      ( "srv-threadpool-set",
        measure_ns (label ^ "/tpset") (fun () ->
            ok (Admin.set_threadpool srv ~max_workers:4 ())) );
      ( "dmn-log-info",
        measure_ns (label ^ "/loginfo") (fun () ->
            ignore (ok (Admin.get_logging_level admin))) );
    ]
  in
  let idle = measure_admin "idle" in
  (* load: 8 clients hammering the management server *)
  let stop = Atomic.make false in
  let conns =
    List.init 8 (fun _ ->
        ok
          (Connect.open_uri
             (Printf.sprintf "test+unix://%s/?daemon=%s" node daemon_name)))
  in
  let loaders =
    List.map
      (fun conn ->
        let dom = ok (Domain.lookup_by_name conn dom_name) in
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              ignore (Domain.xml_desc dom)
            done)
          ())
      conns
  in
  let loaded = measure_admin "loaded" in
  Atomic.set stop true;
  List.iter Thread.join loaders;
  List.iter Connect.close conns;
  let rows =
    List.map2
      (fun (op, idle_ns) (_, loaded_ns) -> [ op; pp_ns idle_ns; pp_ns loaded_ns ])
      idle loaded
  in
  table [ "admin operation"; "idle daemon"; "daemon under load" ] rows;
  Admin.close admin;
  Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* E12 / Table 6: codec costs                                          *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6 (E12): serialization-substrate costs";
  let small_cfg = Vm_config.make (fresh "xs") in
  let big_cfg =
    Vm_config.make
      ~disks:
        (List.init 16 (fun i ->
             Vm_config.
               {
                 source_path = Printf.sprintf "/i/d%d.img" i;
                 target_dev = Printf.sprintf "vd%c" (Char.chr (Char.code 'a' + i));
                 disk_format = "qcow2";
                 readonly = false;
               }))
      (fresh "xl")
  in
  let small_xml = Vmm.Domxml.to_xml ~virt_type:"kvm" small_cfg in
  let big_xml = Vmm.Domxml.to_xml ~virt_type:"kvm" big_cfg in
  let packet_body = String.make 1024 'p' in
  let header =
    Rpc_packet.call_header ~program:Rp.program ~version:1 ~procedure:3 ~serial:9
  in
  let packet = Rpc_packet.encode header packet_body in
  let params =
    [
      Tp.uint "minWorkers" 5; Tp.uint "maxWorkers" 20; Tp.uint "prioWorkers" 5;
      Tp.string "sock_addr" "192.168.1.1:1234"; Tp.bool "readonly" false;
    ]
  in
  let params_wire = Xdr.encode Tp.encode params in
  let tls_client, tls_server = Tlslike.handshake_pair () in
  let payload_1k = String.make 1024 'q' in
  let payload_64k = String.make (64 * 1024) 'q' in
  let host = Hvsim.Hostinfo.create () in
  let qcfg = Vm_config.make (fresh "qmp") in
  let proc =
    match
      Hvsim.Qemu_proc.spawn host
        ~argv:[ "qemu"; "-name"; qcfg.Vm_config.name; "-S" ]
        qcfg
    with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  (match Hvsim.Qemu_proc.qmp proc ~cmd:"qmp_capabilities" () with
   | Ok _ -> ()
   | Error msg -> failwith msg);
  let store = Hvsim.Xenstore.create () in
  Hvsim.Xenstore.write store "/local/domain/1/name" "bench";
  let rows =
    [
      [ Printf.sprintf "domain XML format (%dB)" (String.length small_xml);
        pp_ns (measure_ns "xmlfmt-s" (fun () -> ignore (Vmm.Domxml.to_xml ~virt_type:"kvm" small_cfg))) ];
      [ Printf.sprintf "domain XML parse (%dB)" (String.length small_xml);
        pp_ns (measure_ns "xmlparse-s" (fun () -> ignore (Vmm.Domxml.of_xml small_xml))) ];
      [ Printf.sprintf "domain XML parse (%dB, 16 disks)" (String.length big_xml);
        pp_ns (measure_ns "xmlparse-l" (fun () -> ignore (Vmm.Domxml.of_xml big_xml))) ];
      [ "RPC packet encode (1 KiB)";
        pp_ns (measure_ns "pktenc" (fun () -> ignore (Rpc_packet.encode header packet_body))) ];
      [ "RPC packet decode (1 KiB)";
        pp_ns (measure_ns "pktdec" (fun () -> ignore (Rpc_packet.decode packet))) ];
      [ "typed params encode (5 fields)";
        pp_ns (measure_ns "tpenc" (fun () -> ignore (Xdr.encode Tp.encode params))) ];
      [ "typed params decode (5 fields)";
        pp_ns (measure_ns "tpdec" (fun () -> ignore (Xdr.decode Tp.decode params_wire))) ];
      [ "TLS-like seal+open (1 KiB)";
        pp_ns
          (measure_ns "tls1k" (fun () ->
               ignore (Tlslike.open_ tls_server (Tlslike.seal tls_client payload_1k)))) ];
      [ "TLS-like seal+open (64 KiB)";
        pp_ns
          (measure_ns "tls64k" (fun () ->
               ignore (Tlslike.open_ tls_server (Tlslike.seal tls_client payload_64k)))) ];
      [ "TLS-like rekey (ablation)";
        pp_ns
          (measure_ns "rekey" (fun () ->
               Tlslike.rekey tls_client tls_server;
               ignore (Tlslike.open_ tls_server (Tlslike.seal tls_client "x")))) ];
      [ "QMP query-status round trip";
        pp_ns
          (measure_ns "qmp" (fun () ->
               match Hvsim.Qemu_proc.qmp proc ~cmd:"query-status" () with
               | Ok _ -> ()
               | Error msg -> failwith msg)) ];
      [ "xenstore write+read";
        pp_ns
          (measure_ns "xenstore" (fun () ->
               Hvsim.Xenstore.write store "/local/domain/1/state" "running";
               ignore (Hvsim.Xenstore.read store "/local/domain/1/state"))) ];
    ]
  in
  table [ "codec"; "latency" ] rows

(* ------------------------------------------------------------------ *)
(* E9 / chaos: resilience under injected connection loss               *)
(* ------------------------------------------------------------------ *)

(* At-least-once executor (the client half of the retry contract: the
   remote driver only transparently retries idempotent calls, so after a
   reconnect a mutating op is verified against desired state and redone
   here if it did not take). *)
let rec at_least_once ~retries op verify =
  match op () with
  | Ok () -> true
  | Error _ when verify () -> true
  | Error _ when retries > 0 ->
    Thread.delay 0.01;
    at_least_once ~retries:(retries - 1) op verify
  | Error _ -> false

let chaos () =
  section
    "Chaos (E9): connection killed every 25 frames, 25x define/start/list/destroy";
  subsection
    "each accepted connection dies when its 25th frame arrives (seeded plan);";
  subsection
    "the resilient client runs keepalive=50ms and a reconnect budget of 8\n";
  let cycles = 25 in
  let run_variant ~label ~resilient =
    let daemon_name = fresh "chaosd" in
    let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
    ignore
      (Ovnet.Netsim.set_listener_faults (daemon_name ^ "-sock")
         (Some (Ovnet.Faults.plan ~seed:11 [ Ovnet.Faults.Drop_after 25 ])));
    Drv_remote.reset_stats ();
    let uri =
      if resilient then
        Printf.sprintf
          "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005&reconnect_max_delay=0.05&keepalive=0.05"
          (fresh "cw") daemon_name
      else Printf.sprintf "test+unix://%s/?daemon=%s" (fresh "cw") daemon_name
    in
    let ops_ok = ref 0 in
    let total = ref 0 in
    let count b =
      incr total;
      if b then incr ops_ok
    in
    let (), elapsed =
      time_once (fun () ->
          match Connect.open_uri uri with
          | Error _ -> total := !total + (cycles * 4)
          | Ok conn ->
            for i = 1 to cycles do
              let name = Printf.sprintf "cvm%d" i in
              let xml =
                Vmm.Domxml.to_xml ~virt_type:"test"
                  (Vm_config.make ~memory_kib:(8 * 1024) name)
              in
              count
                (at_least_once ~retries:5
                   (fun () -> Result.map ignore (Domain.define_xml conn xml))
                   (fun () -> Result.is_ok (Domain.lookup_by_name conn name)));
              match Domain.lookup_by_name conn name with
              | Error _ ->
                (* connection gone for good: the remaining ops fail *)
                count false;
                count false;
                count false
              | Ok dom ->
                count
                  (at_least_once ~retries:5
                     (fun () -> Domain.create dom)
                     (fun () -> Domain.is_active dom = Ok true));
                count
                  (at_least_once ~retries:5
                     (fun () -> Result.map ignore (Connect.list_domains conn))
                     (fun () -> false));
                count
                  (at_least_once ~retries:5
                     (fun () -> Domain.destroy dom)
                     (fun () -> Domain.is_active dom = Ok false))
            done;
            (try Connect.close conn with _ -> ()))
    in
    let stats = Drv_remote.stats () in
    Daemon.stop daemon;
    let latencies = List.sort compare stats.Drv_remote.st_recovery_latencies in
    let pp_latency = function
      | [] -> "-"
      | l -> Printf.sprintf "%.1f ms" (1000.0 *. List.nth l (List.length l / 2))
    in
    let pp_max = function
      | [] -> "-"
      | l -> Printf.sprintf "%.1f ms" (1000.0 *. List.nth l (List.length l - 1))
    in
    [
      label;
      Printf.sprintf "%d/%d" !ops_ok !total;
      Printf.sprintf "%.0f%%" (100.0 *. float_of_int !ops_ok /. float_of_int !total);
      string_of_int stats.Drv_remote.st_reconnects;
      string_of_int stats.Drv_remote.st_retried_calls;
      string_of_int stats.Drv_remote.st_giveups;
      pp_latency latencies;
      pp_max latencies;
      Printf.sprintf "%.0f ms" (1000.0 *. elapsed);
    ]
  in
  table
    [
      "client"; "ops ok"; "success"; "reconnects"; "retried"; "giveups";
      "recovery p50"; "recovery max"; "duration";
    ]
    [
      run_variant ~label:"no resilience" ~resilient:false;
      run_variant ~label:"keepalive+reconnect" ~resilient:true;
    ]

(* ------------------------------------------------------------------ *)
(* E14: driver read-op concurrency — coarse mutex vs rwlock            *)
(* ------------------------------------------------------------------ *)

(* N clients poll dom_get_info (a read-classified op whose simulated
   200 us hypervisor exchange happens inside the lock section) against
   one node while a background writer cycles a domain's lifecycle.  The
   node lock is the only variable: ?coarse=1 demotes the rwlock to a
   plain mutex, reproducing the pre-refactor coarse driver lock on the
   identical code path. *)
let rwlock () =
  section "E14: read-op throughput vs clients, coarse driver mutex vs rwlock";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let duration_s = if smoke then 0.05 else 0.3 in
  let client_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let run_variant ~coarse n_clients =
    let node = fresh "rw" in
    let uri =
      Printf.sprintf "test://%s/?latency_us=200%s" node
        (if coarse then "&coarse=1" else "")
    in
    let conns = List.init n_clients (fun _ -> ok (Connect.open_uri uri)) in
    let doms =
      Array.of_list
        (List.map (fun c -> ok (Domain.lookup_by_name c "test")) conns)
    in
    (* Background lifecycle writer: keeps write sections flowing through
       the same lock for the whole measurement. *)
    let writer_conn = ok (Connect.open_uri uri) in
    let wdom = define_domain (List.hd kits) writer_conn (fresh "wr") in
    let stop = Atomic.make false in
    let writer =
      Thread.create
        (fun () ->
          while not (Atomic.get stop) do
            ignore (Domain.create wdom);
            ignore (Domain.destroy wdom);
            Thread.delay 0.002
          done)
        ()
    in
    let ops =
      measure_throughput ~n_threads:n_clients ~duration_s (fun i ->
          ignore (ok (Domain.get_info doms.(i))))
    in
    Atomic.set stop true;
    Thread.join writer;
    List.iter Connect.close conns;
    Connect.close writer_conn;
    ops
  in
  let rows =
    List.map
      (fun n ->
        let coarse = run_variant ~coarse:true n in
        let rw = run_variant ~coarse:false n in
        [
          string_of_int n;
          pp_ops coarse ^ " ops/s";
          pp_ops rw ^ " ops/s";
          Printf.sprintf "%.1fx" (rw /. coarse);
        ])
      client_counts
  in
  table [ "clients"; "coarse mutex"; "rwlock"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* E15: daemon restart recovery — journal replay and re-adoption       *)
(* ------------------------------------------------------------------ *)

(* A manager crash (Ovirt.crash_managers) drops every driver node while
   journals and simulated hypervisor state survive; the next connection
   replays the journal and reconciles.  Measured: wall time of that
   recovering open vs the number of defined/running domains, with the
   re-adoption counts verified against what was set up before the crash.
   Then a qemu re-adoption check (same pids after recovery — the guests
   were never touched) and a crash-point sweep of the journal image. *)
let recovery () =
  section "E15: restart recovery time and re-adoption vs domain count";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let counts = if smoke then [ 5; 25 ] else [ 10; 100; 500; 1000 ] in
  let events_count conn lifecycle =
    let ops = ok (Connect.ops conn) in
    Ovirt.Events.history ops.Driver.events
    |> List.filter (fun ev -> ev.Ovirt.Events.lifecycle = lifecycle)
    |> List.length
  in
  let run_scale n =
    let node = fresh "rec" in
    let uri = "test://" ^ node ^ "/" in
    let conn = ok (Connect.open_uri uri) in
    (* The vcpu oversubscription cap bounds simultaneously running
       guests, so the running share stops growing at 40 (+8 autostart). *)
    let running = min (n / 2) 40 in
    let autostart = min (max (n / 10) 1) 8 in
    for i = 1 to n do
      let dom = define_domain (List.hd kits) conn (Printf.sprintf "rvm%04d" i) in
      if i <= running then ok (Domain.create dom)
      else if i <= running + autostart then ok (Domain.set_autostart dom true)
    done;
    Connect.close conn;
    Ovirt.crash_managers ();
    let conn2, elapsed = time_once (fun () -> ok (Connect.open_uri uri)) in
    let journal_path = "/var/lib/ovirt/test/" ^ node ^ ".journal" in
    let _, replay = Persist.Journal.open_ journal_path in
    let adopted = events_count conn2 Ovirt.Events.Ev_adopted in
    let active = List.length (ok (Connect.list_domains conn2)) in
    let defined = List.length (ok (Connect.list_defined_domains conn2)) in
    (* +1 everywhere for the test driver's seeded "test" domain. *)
    let adoption_ok = adopted = running + 1 && active = running + autostart + 1 in
    Connect.close conn2;
    [
      string_of_int n;
      string_of_int running;
      string_of_int (List.length replay.Persist.Journal.rp_records);
      Printf.sprintf "%.1f ms" (1000.0 *. elapsed);
      string_of_int adopted;
      string_of_int (active - adopted);
      (if adoption_ok && defined + active = n + 1 then "ok" else "MISMATCH");
    ]
  in
  table
    [
      "domains"; "running"; "journal records"; "recovery open"; "adopted";
      "autostarted"; "verified";
    ]
    (List.map run_scale counts);
  subsection "qemu re-adoption: same emulator processes before and after";
  let qnode = fresh "recq" in
  let quri = "qemu://" ^ qnode ^ "/system" in
  let qkit = List.nth kits 1 in
  let qconn = ok (Connect.open_uri quri) in
  let q_total = if smoke then 4 else 16 in
  let q_running = q_total / 2 in
  for i = 1 to q_total do
    let dom = define_domain qkit qconn (Printf.sprintf "qrv%02d" i) in
    if i <= q_running then ok (Domain.create dom)
  done;
  let pids conn =
    List.map
      (fun r -> (r.Driver.dom_name, r.Driver.dom_id))
      (ok (Connect.list_domains conn))
    |> List.sort compare
  in
  let before = pids qconn in
  Connect.close qconn;
  Ovirt.crash_managers ();
  let qconn2, q_elapsed = time_once (fun () -> ok (Connect.open_uri quri)) in
  let after = pids qconn2 in
  Printf.printf
    "  %d defined / %d running: recovery open %.1f ms, pids preserved: %s\n"
    q_total q_running (1000.0 *. q_elapsed)
    (if before = after && before <> [] then "yes" else "NO");
  Connect.close qconn2;
  subsection "crash-point sweep: every journal cut replays prefix-consistently";
  let n_ops = if smoke then 8 else 24 in
  let cfgs =
    Array.init (n_ops / 4) (fun i -> Vm_config.make (Printf.sprintf "swp%d" i))
  in
  (* Each op changes state, so it appends exactly one record — the 1:1
     map the boundary arithmetic below relies on (asserted after).  The
     live set only grows, which keeps the record count below the
     compaction threshold (4*|snapshot|+16) for any n_ops. *)
  let ops_list =
    List.concat
      (List.init (n_ops / 4) (fun b ->
           let cfg = cfgs.(b) in
           let name = cfg.Vm_config.name in
           [
             (fun st -> ok (Drivers.Domstore.define st cfg));
             (fun st -> Drivers.Domstore.note_started st name);
             (fun st -> ok (Drivers.Domstore.set_autostart st name true));
             (fun st -> Drivers.Domstore.note_stopped st name);
           ]))
  in
  let apply_prefix k =
    let st = Drivers.Domstore.create () in
    ignore (Drivers.Domstore.attach st ~path:(fresh "swm"));
    List.iteri (fun i op -> if i < k then op st) ops_list;
    Drivers.Domstore.entries st
    |> List.map (fun (name, cfg, a, r) ->
           (name, Vmm.Uuid.to_string cfg.Vm_config.uuid, a, r))
  in
  let path = fresh "swj" in
  let st = Drivers.Domstore.create () in
  ignore (Drivers.Domstore.attach st ~path);
  List.iter (fun op -> op st) ops_list;
  let img = Option.get (Persist.Media.read path) in
  let _, replay = Persist.Journal.open_ path in
  let boundary = Array.make (List.length replay.Persist.Journal.rp_records + 1) 0 in
  List.iteri
    (fun i r ->
      boundary.(i + 1) <-
        boundary.(i) + String.length (Persist.Journal.encode_record r))
    replay.Persist.Journal.rp_records;
  assert (List.length replay.Persist.Journal.rp_records = List.length ops_list);
  let cuts = ref 0 and violations = ref 0 in
  Array.iteri
    (fun k bound ->
      let check cut expect_k =
        incr cuts;
        let p = fresh "swc" in
        Persist.Media.write p (String.sub img 0 cut);
        let cut_st = Drivers.Domstore.create () in
        ignore (Drivers.Domstore.attach cut_st ~path:p);
        let got =
          Drivers.Domstore.entries cut_st
          |> List.map (fun (name, cfg, a, r) ->
                 (name, Vmm.Uuid.to_string cfg.Vm_config.uuid, a, r))
        in
        if got <> apply_prefix expect_k then incr violations
      in
      check bound k;
      if k < List.length ops_list then begin
        let len = boundary.(k + 1) - bound in
        List.iter
          (fun d -> if d >= 1 && d < len then check (bound + d) k)
          [ 1; len / 2; len - 1 ]
      end)
    boundary;
  Printf.printf "  %d cut points (%d records), prefix violations: %d\n" !cuts
    (List.length ops_list) !violations

(* ------------------------------------------------------------------ *)
(* E16: bulk & batched RPC + cache vs the per-op N+1 pattern           *)
(* ------------------------------------------------------------------ *)

let bulk () =
  section "E16: fleet inventory — bulk RPC + client cache vs per-op N+1";
  subsection "inventory = enumerate all domains, then info + autostart + XML each;";
  subsection "per-op drives a proto-minor-2 daemon with the cache off (pre-bulk wire),";
  subsection "bulk drives the v1.3 wire cold, warm repeats the pass on the same conn\n";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let counts = if smoke then [ 5; 25 ] else [ 10; 100; 1000 ] in
  let old_name = fresh "bulk12d" in
  let new_name = fresh "bulk13d" in
  let old_daemon =
    Daemon.start ~name:old_name
      ~config:{ quiet_config with Daemon_config.proto_minor = 2 }
      ()
  in
  let new_daemon = Daemon.start ~name:new_name ~config:quiet_config () in
  let calls_of conn =
    match Drv_remote.conn_stats (ok (Connect.ops conn)) with
    | Some s -> s.Drv_remote.st_calls
    | None -> 0
  in
  let inventory conn =
    let records = ok (Connect.list_all_domains conn) in
    List.iter
      (fun r ->
        let dom =
          ok (Domain.lookup_by_name conn r.Driver.rec_ref.Driver.dom_name)
        in
        ignore (ok (Domain.get_info dom));
        ignore (ok (Domain.get_autostart dom));
        ignore (ok (Domain.xml_desc dom)))
      records;
    List.length records
  in
  let pass conn =
    let c0 = calls_of conn in
    let _, elapsed = time_once (fun () -> inventory conn) in
    (calls_of conn - c0, elapsed)
  in
  let run transport n =
    let node = fresh "fleet" in
    let direct = ok (Connect.open_uri (Printf.sprintf "test://%s/" node)) in
    for i = 1 to n do
      ignore
        (ok
           (Domain.define_xml direct
              (Vmm.Domxml.to_xml ~virt_type:"test"
                 (Vm_config.make ~memory_kib:(mib 8) (Printf.sprintf "fvm%d" i)))))
    done;
    let per_op =
      ok
        (Connect.open_uri
           (Printf.sprintf "test+%s://%s/?daemon=%s&cache=0" transport node
              old_name))
    in
    let bulk_conn =
      ok
        (Connect.open_uri
           (Printf.sprintf "test+%s://%s/?daemon=%s" transport node new_name))
    in
    let rt_old, t_old = pass per_op in
    let rt_cold, t_cold = pass bulk_conn in
    let rt_warm, t_warm = pass bulk_conn in
    Connect.close per_op;
    Connect.close bulk_conn;
    Connect.close direct;
    [
      transport;
      string_of_int n;
      string_of_int rt_old;
      string_of_int rt_cold;
      string_of_int rt_warm;
      Printf.sprintf "%.1fx" (float_of_int rt_old /. float_of_int (max 1 rt_cold));
      Printf.sprintf "%.2f" (t_old *. 1000.);
      Printf.sprintf "%.2f" (t_cold *. 1000.);
      Printf.sprintf "%.2f" (t_warm *. 1000.);
    ]
  in
  let rows =
    List.concat_map (fun tr -> List.map (run tr) counts) [ "tcp"; "tls" ]
  in
  table
    [
      "transport"; "domains"; "per-op RT"; "bulk RT"; "warm RT"; "RT cut";
      "per-op ms"; "bulk ms"; "warm ms";
    ]
    rows;
  Daemon.stop old_daemon;
  Daemon.stop new_daemon

(* ------------------------------------------------------------------ *)
(* E17: tail latency under overload — admission control on vs off      *)
(* ------------------------------------------------------------------ *)

(* Closed-loop overload: N clients hammer a one-worker daemon with
   normal-class lifecycle ops whose simulated hypervisor exchange takes
   5 ms, so demand far exceeds the pool's service rate.  Unbounded, the
   backlog grows to the whole client population and every request pays
   the full queue.  With admission control the queue is capped: admitted
   requests wait at most (limit+1) service times, overflow is answered
   immediately with Overloaded + a retry-after hint.  A watchdog phase
   then wedges the single worker past the wall limit and verifies the
   replacement serves while the wedged op completes — zero capacity
   loss. *)
let overload () =
  section "E17: tail latency under overload - admission control on vs off";
  subsection "closed loop: every client re-issues as soon as its call returns;";
  subsection "service time 5 ms on a one-worker pool, queue limit 4 when on\n";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let clients = if smoke then 8 else 40 in
  let per_client = if smoke then 6 else 25 in
  let service_us = 5_000 in
  let wait_for ?(timeout_s = 5.0) cond =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop () =
      if cond () then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.005;
        loop ()
      end
    in
    loop ()
  in
  let pctl sorted p =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let run ~label ~queue_limit =
    let daemon_name = fresh "ovld" in
    let config =
      {
        quiet_config with
        Daemon_config.min_workers = 1;
        max_workers = 1;
        prio_workers = 1;
        job_queue_limit = queue_limit;
      }
    in
    let daemon = Daemon.start ~name:daemon_name ~config () in
    let node = fresh "ovln" in
    let direct = ok (Connect.open_uri ("test://" ^ node ^ "/")) in
    let names = List.init clients (fun i -> Printf.sprintf "ld%d" i) in
    List.iter
      (fun n -> ignore (ok (Domain.create (define_domain (List.hd kits) direct n))))
      names;
    Connect.close
      (ok
         (Connect.open_uri
            (Printf.sprintf "test://%s/?latency_us=%d" node service_us)));
    let uri =
      Printf.sprintf "test+unix://%s/?daemon=%s&events=0&cache=0&breaker=0" node
        daemon_name
    in
    let served = ref [] and shed = ref [] in
    let record_mutex = Mutex.create () in
    let record bucket v =
      Mutex.lock record_mutex;
      bucket := v :: !bucket;
      Mutex.unlock record_mutex
    in
    (* Open serially: a 40-wide simultaneous open burst trips the
       daemon's pending-auth connection cap, which is not the overload
       path under test here. *)
    let conns =
      List.map
        (fun name ->
          let conn = ok (Connect.open_uri uri) in
          (conn, ok (Domain.lookup_by_name conn name)))
        names
    in
    let threads =
      List.map
        (fun (conn, dom) ->
          Thread.create
            (fun () ->
              let running = ref true in
              for _ = 1 to per_client do
                let result, dt =
                  time_once (fun () ->
                      if !running then Domain.suspend dom else Domain.resume dom)
                in
                match result with
                | Ok () ->
                  running := not !running;
                  record served (dt *. 1000.)
                | Error e when e.Ovirt.Verror.code = Ovirt.Verror.Overloaded ->
                  record shed (dt *. 1000.)
                | Error e -> failwith ("overload: " ^ Ovirt.Verror.to_string e)
              done;
              Connect.close conn)
            ())
        conns
    in
    List.iter Thread.join threads;
    let admin = ok (Admin.connect ~daemon:daemon_name ()) in
    let srv = ok (Admin.lookup_server admin "libvirtd") in
    let ps = ok (Admin.pool_stats srv) in
    Admin.close admin;
    Connect.close direct;
    Daemon.stop daemon;
    let sorted l =
      let a = Array.of_list l in
      Array.sort compare a;
      a
    in
    let all = sorted (!served @ !shed) in
    let sv = sorted !served in
    let p99_all = pctl all 0.99 in
    ( [
        label;
        string_of_int (Array.length all);
        string_of_int (List.length !served);
        string_of_int ps.Admin.ps_jobs_shed;
        Printf.sprintf "%.1f" (pctl all 0.5);
        Printf.sprintf "%.1f" p99_all;
        Printf.sprintf "%.1f" (pctl sv 0.5);
        Printf.sprintf "%.1f" (pctl sv 0.99);
      ],
      (p99_all, ps.Admin.ps_jobs_shed) )
  in
  let row_off, (p99_off, _) = run ~label:"admission off" ~queue_limit:0 in
  let row_on, (p99_on, sheds_on) = run ~label:"admission on (4)" ~queue_limit:4 in
  table
    [
      "config"; "requests"; "served"; "shed"; "p50 ms"; "p99 ms";
      "served p50"; "served p99";
    ]
    [ row_off; row_on ];
  subsection
    (Printf.sprintf "p99 all-requests: %.1f ms off vs %.1f ms on - %.1fx lower\n"
       p99_off p99_on
       (p99_off /. Float.max 0.001 p99_on));
  (* Watchdog phase: one worker, 50 ms wall limit, a 300 ms "hypervisor
     call" wedging it.  The replacement must serve a healthy op on a
     second node while the original is still stuck, and the pool must end
     at exactly its configured size. *)
  subsection "watchdog: 300 ms op vs 50 ms wall limit on a one-worker pool";
  let daemon_name = fresh "ovlw" in
  let config =
    {
      quiet_config with
      Daemon_config.min_workers = 1;
      max_workers = 1;
      prio_workers = 1;
      wall_limit_ms = 50;
    }
  in
  let daemon = Daemon.start ~name:daemon_name ~config () in
  let slow_node = fresh "ovls" and fast_node = fresh "ovlf" in
  Connect.close
    (ok (Connect.open_uri (Printf.sprintf "test://%s/?latency_us=300000" slow_node)));
  let rslow =
    ok
      (Connect.open_uri
         (Printf.sprintf "test+unix://%s/?daemon=%s&events=0&cache=0" slow_node
            daemon_name))
  in
  let rfast =
    ok
      (Connect.open_uri
         (Printf.sprintf "test+unix://%s/?daemon=%s&events=0&cache=0" fast_node
            daemon_name))
  in
  let sdom = ok (Domain.lookup_by_name rslow "test") in
  let fdom = ok (Domain.lookup_by_name rfast "test") in
  let admin = ok (Admin.connect ~daemon:daemon_name ()) in
  let srv = ok (Admin.lookup_server admin "libvirtd") in
  let wedger = Thread.create (fun () -> ignore (Domain.suspend sdom)) () in
  let detected =
    wait_for (fun () -> (ok (Admin.pool_stats srv)).Admin.ps_workers_stuck = 1)
  in
  let (), healthy_ms = time_once (fun () -> ignore (ok (Domain.set_memory fdom 1024))) in
  Thread.join wedger;
  let settled =
    wait_for (fun () ->
        let ps = ok (Admin.pool_stats srv) in
        let i = ok (Admin.threadpool_info srv) in
        ps.Admin.ps_workers_stuck_now = 0 && i.Admin.tp_n_workers = 1)
  in
  Admin.close admin;
  Connect.close rslow;
  Connect.close rfast;
  Daemon.stop daemon;
  table
    [ "stuck detected"; "healthy op during wedge"; "capacity restored" ]
    [
      [
        (if detected then "yes" else "NO");
        Printf.sprintf "%.1f ms" (healthy_ms *. 1000.);
        (if settled then "exact" else "LOST");
      ];
    ];
  if smoke then begin
    if sheds_on = 0 then failwith "smoke: shed path not exercised";
    if not (detected && settled) then
      failwith "smoke: stuck-worker capacity not restored";
    print_endline "smoke assertions passed: sheds observed, capacity exact"
  end

(* ------------------------------------------------------------------ *)
(* E18: declarative reconciliation — convergence latency and crash     *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

(* Two claims.  Latency: converging a fleet of N stopped guests whose
   policy says running costs ~N/parallel_shutdown node round-trips, so
   raising the parallelism bound cuts convergence time near-linearly.
   Robustness: killing the daemon at swept points mid-apply (after the
   k-th lifecycle side effect, before its checkpoint — the worst
   window) and restarting it never duplicates a side effect and never
   leaves a domain diverged: the journaled plan resumes, the
   postcondition precheck skips what already happened, and the total
   number of starts across every incarnation is exactly N. *)
let reconcile () =
  section "E18: desired-state reconciliation - convergence and crash sweep";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let running_policy =
    {
      Ovirt.Dompolicy.default with
      Ovirt.Dompolicy.run_state = Ovirt.Dompolicy.Rs_running;
    }
  in
  let wait_for ?(timeout_s = 30.0) cond =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop () =
      if cond () then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.01;
        loop ()
      end
    in
    loop ()
  in
  (* The simulated hosts cap vCPU reservations at 8x their 8 cores, so
     a 200-guest fleet spans several nodes — which is also the honest
     shape: one reconciler converging specs across multiple URIs. *)
  let n_nodes = 4 in
  let fleet ~daemon_name ~prefix ~count ~policy_each =
    let per_node = count / n_nodes in
    List.concat
      (List.init n_nodes (fun ni ->
           let node = fresh "rcn" in
           let uri =
             Printf.sprintf "test+unix://%s/?daemon=%s&events=0&cache=0" node
               daemon_name
           in
           let conn = ok (Connect.open_uri uri) in
           let doms =
             List.init per_node (fun i ->
                 define_domain (List.hd kits) conn
                   (Printf.sprintf "%s%d-%03d" prefix ni i))
           in
           if policy_each then
             List.iter (fun d -> ok (Domain.set_policy d running_policy)) doms;
           Connect.close conn;
           [ node ]))
  in
  (* --- convergence latency vs parallel_shutdown ------------------- *)
  let n_lat = if smoke then 24 else 200 in
  subsection
    (Printf.sprintf
       "latency: %d stopped guests on %d nodes declared running, 2 ms per op"
       n_lat n_nodes);
  let lat_rows =
    List.map
      (fun parallel ->
        let daemon_name = fresh "rcl" in
        let config =
          {
            quiet_config with
            Daemon_config.parallel_shutdown = parallel;
            (* the loop is stopped and driven by hand below *)
            reconcile_interval_ms = 3_600_000;
          }
        in
        let daemon = Daemon.start ~name:daemon_name ~config () in
        (* Drive passes by hand: stop the loop first so the timed pass
           is the only one running (the daemon serializes them the same
           way — the loop is the sole caller). *)
        let r = Daemon.reconciler daemon in
        Ovirt.Reconcile.stop r;
        let nodes = fleet ~daemon_name ~prefix:"lat" ~count:n_lat ~policy_each:true in
        List.iter
          (fun node ->
            Connect.close
              (ok
                 (Connect.open_uri
                    (Printf.sprintf "test://%s/?latency_us=2000" node))))
          nodes;
        let s1, converge_s = time_once (fun () -> Ovirt.Reconcile.converge_now r) in
        let s2, verify_s = time_once (fun () -> Ovirt.Reconcile.converge_now r) in
        if s1.Ovirt.Reconcile.sum_ops_applied <> n_lat then
          failwith
            (Printf.sprintf "reconcile latency: %d ops applied, wanted %d"
               s1.Ovirt.Reconcile.sum_ops_applied n_lat);
        if s2.Ovirt.Reconcile.sum_converged <> n_lat then
          failwith "reconcile latency: fleet did not verify converged";
        Daemon.stop daemon;
        ( [
            string_of_int parallel;
            string_of_int n_lat;
            string_of_int s1.Ovirt.Reconcile.sum_ops_applied;
            Printf.sprintf "%.1f" (converge_s *. 1000.);
            Printf.sprintf "%.1f" (verify_s *. 1000.);
          ],
          converge_s ))
      [ 1; 4; 16 ]
  in
  table
    [ "parallel_shutdown"; "domains"; "ops"; "converge ms"; "verify ms" ]
    (List.map fst lat_rows);
  (match List.map snd lat_rows with
   | [ t1; _; t16 ] ->
     subsection
       (Printf.sprintf "parallel 16 vs 1: %.1fx faster\n" (t1 /. Float.max 0.001 t16));
     if (not smoke) && t16 >= t1 then
       failwith "reconcile latency: parallelism bound did not help"
   | _ -> ());
  (* --- crash sweep ------------------------------------------------- *)
  let n = if smoke then 24 else 200 in
  let crash_points =
    if smoke then [ 1; 5; 12; 23 ] else [ 1; 3; 10; 50; 120; 199 ]
  in
  subsection
    (Printf.sprintf
       "crash sweep: %d-domain spec on %d nodes, daemon killed after side effect #{%s},"
       n n_nodes
       (String.concat ", " (List.map string_of_int crash_points)));
  subsection "each kill lands between an apply and its checkpoint\n";
  let daemon_name = fresh "rcs" in
  let sweep_config =
    {
      quiet_config with
      (* sequential applies make "crash after the k-th side effect"
         exact *)
      Daemon_config.parallel_shutdown = 1;
      reconcile_interval_ms = 30;
    }
  in
  (* Cumulative side-effect counter across every daemon incarnation,
     bumped by the post_apply chaos hook; [limit] is the next crash
     point.  Past the limit the hook also aborts at pre_apply, so the
     count cannot drift while the kill is being delivered. *)
  let total = Atomic.make 0 in
  let limit = ref 0 in
  Ovirt.Reconcile.crash_hook :=
    (fun site ->
      match site with
      | "pre_apply" when Atomic.get total >= !limit -> failwith "chaos: crash"
      | "post_apply" ->
        Atomic.incr total;
        if Atomic.get total >= !limit then failwith "chaos: crash"
      | _ -> ());
  Fun.protect
    ~finally:(fun () -> Ovirt.Reconcile.crash_hook := fun _ -> ())
    (fun () ->
      let daemon = Daemon.start ~name:daemon_name ~config:sweep_config () in
      (* limit = 0: every pass aborts before its first apply, so the
         whole spec is declared before any side effect runs. *)
      let nodes = fleet ~daemon_name ~prefix:"swp" ~count:n ~policy_each:true in
      let incarnations = ref 1 in
      let current = ref daemon in
      List.iter
        (fun k ->
          limit := k;
          if not (wait_for (fun () -> Atomic.get total >= k)) then
            failwith
              (Printf.sprintf "reconcile sweep: never reached side effect %d" k);
          Daemon.crash !current;
          current := Daemon.start ~name:daemon_name ~config:sweep_config ();
          incr incarnations)
        crash_points;
      limit := max_int;
      let admin = ok (Admin.connect ~daemon:daemon_name ()) in
      let converged =
        wait_for (fun () ->
            let s, _ = ok (Admin.reconcile_status admin) in
            s.Ovirt.Reconcile.sum_converged = n
            && s.Ovirt.Reconcile.sum_diverged = 0)
      in
      let summary, _ = ok (Admin.reconcile_status admin) in
      Admin.close admin;
      (* The fleet really is running, not just claimed converged. *)
      let running =
        List.fold_left
          (fun acc node ->
            let uri =
              Printf.sprintf "test+unix://%s/?daemon=%s&events=0&cache=0" node
                daemon_name
            in
            let conn = ok (Connect.open_uri uri) in
            let refs = ok (Connect.list_domains conn) in
            Connect.close conn;
            acc
            + List.length
                (List.filter
                   (fun r ->
                     String.length r.Driver.dom_name >= 3
                     && String.sub r.Driver.dom_name 0 3 = "swp")
                   refs))
          0 nodes
      in
      Daemon.stop !current;
      table
        [
          "domains"; "kills"; "incarnations"; "side effects"; "converged";
          "diverged"; "running";
        ]
        [
          [
            string_of_int n;
            string_of_int (List.length crash_points);
            string_of_int !incarnations;
            string_of_int (Atomic.get total);
            string_of_int summary.Ovirt.Reconcile.sum_converged;
            string_of_int summary.Ovirt.Reconcile.sum_diverged;
            string_of_int running;
          ];
        ];
      if not converged then failwith "reconcile sweep: fleet never converged";
      if Atomic.get total <> n then
        failwith
          (Printf.sprintf
             "reconcile sweep: %d side effects for %d domains (duplicates!)"
             (Atomic.get total) n);
      if running < n then
        failwith
          (Printf.sprintf "reconcile sweep: only %d of %d guests running" running n);
      print_endline
        "sweep assertions passed: exactly-once side effects, zero divergence")

(* ------------------------------------------------------------------ *)
(* E19: c10k — connection scalability, reactor vs thread-per-connection *)
(* ------------------------------------------------------------------ *)

(* An integer field from /proc/self/status, e.g. "Threads" or "VmRSS"
   (the latter in kB). *)
let proc_status_int key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = key ^ ":" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line >= String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then
          let rest =
            String.sub line (String.length prefix)
              (String.length line - String.length prefix)
          in
          Scanf.sscanf rest " %d" (fun n -> Some n)
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in ic) scan

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* The paper-era daemon burned one OS thread per connection just to sit
   in recv; the reactor front end multiplexes every socket onto a fixed
   handful of loops.  Measured per io_model and fan-in: extra daemon
   threads, resident memory, and hot-call latency for a small busy
   subset riding amid the idle mass. *)
let c10k () =
  section "E19: c10k — idle connection mass + hot subset, reactor vs threaded";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let fan_ins =
    match Sys.getenv_opt "C10K_FANINS" with
    | Some spec ->
      List.filter_map int_of_string_opt (String.split_on_char ',' spec)
    | None -> if smoke then [ 50; 200 ] else [ 1_000; 10_000 ]
  in
  let n_hot = if smoke then 4 else 16 in
  let calls_per_hot = if smoke then 40 else 300 in
  let echo_packet ~serial body =
    let header =
      Rpc_packet.call_header ~program:Rp.program ~version:Rp.version
        ~procedure:(Rp.proc_to_int Rp.Proc_echo) ~serial
    in
    Rpc_packet.encode header body
  in
  let run io_model n_idle =
    let config =
      {
        quiet_config with
        Daemon_config.io_model;
        max_clients = n_idle + n_hot + 64;
        max_anonymous_clients = n_idle + n_hot + 64;
      }
    in
    let daemon = Daemon.start ~name:(fresh "c10k") ~config () in
    let addr = Daemon.mgmt_address daemon in
    let threads_before = Option.value ~default:0 (proc_status_int "Threads") in
    (* Idle mass: raw kept-alive connections that never say a word after
       the handshake.  Thread-per-connection may refuse to scale here —
       count what actually connected rather than crashing the harness. *)
    let idle = ref [] in
    let idle_opened = ref 0 in
    (try
       for _ = 1 to n_idle do
         idle := Ovnet.Netsim.connect addr Transport.Unix_sock :: !idle;
         incr idle_opened
       done
     with e ->
       Printf.printf "  (stopped at %d idle connections: %s)\n" !idle_opened
         (Printexc.to_string e));
    let threads_after = Option.value ~default:0 (proc_status_int "Threads") in
    (* Accept settle: thread-per-connection serializes every accept on
       the server's client-table lock (with O(clients) maintenance per
       accept), so a connect storm leaves a backlog long after connect()
       returned.  Measure steady state, and report the settle time — it
       is itself part of the comparison. *)
    let srv =
      match Daemon.find_server daemon "libvirtd" with
      | Some s -> s
      | None -> failwith "c10k: no libvirtd server"
    in
    let settle_t0 = Unix.gettimeofday () in
    let settle_deadline = settle_t0 +. 300.0 in
    let rec wait_settled () =
      let n = List.length (Ovirt.Server_obj.list_clients srv) in
      if n >= !idle_opened || Unix.gettimeofday () > settle_deadline then n
      else begin
        Thread.delay 0.05;
        wait_settled ()
      end
    in
    let settled = wait_settled () in
    let settle_s = Unix.gettimeofday () -. settle_t0 in
    if settled < !idle_opened then
      Printf.printf "  (accept backlog never settled: %d of %d accepted)\n"
        settled !idle_opened;
    (* Hot subset: echo round-trips, one driving thread per hot
       connection, every latency sampled. *)
    let hot =
      Array.init n_hot (fun _ -> Ovnet.Netsim.connect addr Transport.Unix_sock)
    in
    let samples = Array.make (n_hot * calls_per_hot) nan in
    let drivers =
      Array.mapi
        (fun h conn ->
          Thread.create
            (fun () ->
              try
                for c = 0 to calls_per_hot - 1 do
                  let t0 = Unix.gettimeofday () in
                  Transport.send conn (echo_packet ~serial:c "ping");
                  match Transport.recv_opt conn ~timeout_s:60.0 with
                  | Some _ ->
                    samples.((h * calls_per_hot) + c) <-
                      (Unix.gettimeofday () -. t0) *. 1e6
                  | None ->
                    (* A tail spike past even the generous timeout:
                       score it at the cap and park this connection. *)
                    samples.((h * calls_per_hot) + c) <- 60.0 *. 1e6;
                    raise Exit
                done
              with Exit -> ())
            ())
        hot
    in
    Array.iter Thread.join drivers;
    Gc.compact ();
    let rss_kb = Option.value ~default:0 (proc_status_int "VmRSS") in
    let recorded =
      Array.of_seq
        (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq samples))
    in
    if Array.length recorded < Array.length samples then
      Printf.printf "  (%d of %d hot calls completed)\n"
        (Array.length recorded) (Array.length samples);
    Array.sort compare recorded;
    let p50 = percentile recorded 50.0 and p99 = percentile recorded 99.0 in
    Array.iter Transport.close hot;
    List.iter Transport.close !idle;
    Daemon.stop daemon;
    ( !idle_opened,
      max 0 (threads_after - threads_before),
      settle_s,
      rss_kb,
      p50,
      p99 )
  in
  let rows = ref [] in
  List.iter
    (fun n_idle ->
      List.iter
        (fun io_model ->
          let opened, threads, settle_s, rss_kb, p50, p99 = run io_model n_idle in
          rows :=
            [
              Daemon_config.io_model_name io_model;
              Printf.sprintf "%d/%d" opened n_idle;
              string_of_int threads;
              Printf.sprintf "%.2f s" settle_s;
              Printf.sprintf "%.1f MB" (float_of_int rss_kb /. 1024.0);
              Printf.sprintf "%.0f us" p50;
              Printf.sprintf "%.0f us" p99;
            ]
            :: !rows)
        [ Daemon_config.Io_threaded; Daemon_config.Io_reactor ])
    fan_ins;
  table
    [ "io_model"; "idle conns"; "+threads"; "settle"; "RSS"; "hot p50"; "hot p99" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E20: resumable event streams under connection chaos                 *)
(* ------------------------------------------------------------------ *)

(* A producer drives lifecycle traffic on the driver node directly (no
   transport, so the fault plan never touches it) while the subscriber's
   daemon connection dies every 8 frames, plus one long daemon-side
   outage with traffic emitted inside it.  The only variable is the
   replay ring capacity: ample, every cut is resumed and replayed
   exactly once (no duplicates, no losses, no gap); tiny, the long
   outage wraps the ring past the client's position and the stream
   degrades *explicitly* — a gap verdict, a wholesale cache flush and an
   Ev_resync marker — never silently.  The stale-read probe is a domain
   whose state changes while the client is away: its post-outage read
   must reflect the daemon, not the cache. *)
let events () =
  section "E20: resumable event streams - exactly-once vs explicit gap-and-resync";
  subsection "connection cut every 8 frames (seeded plan) plus one severed outage";
  subsection "with lifecycle traffic inside it; only the ring capacity varies\n";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let cycles = if smoke then 15 else 100 in
  let run_variant ~label ~ring_capacity =
    let daemon_name = fresh "evd" in
    let config = { quiet_config with Daemon_config.event_ring = ring_capacity } in
    let daemon = Daemon.start ~name:daemon_name ~config () in
    ignore
      (Ovnet.Netsim.set_listener_faults (daemon_name ^ "-sock")
         (Some (Ovnet.Faults.plan ~seed:17 [ Ovnet.Faults.Drop_after 8 ])));
    Drv_remote.reset_stats ();
    let host = fresh "evn" in
    let sub =
      ok
        (Connect.open_uri
           (Printf.sprintf
              "test+unix://%s/?daemon=%s&reconnect=8&reconnect_delay=0.005&reconnect_max_delay=0.05&reconnect_seed=7"
              host daemon_name))
    in
    let mu = Mutex.create () in
    let seen = ref [] in
    let resyncs = ref [] in
    ignore
      (ok
         (Connect.subscribe_events sub (fun ev ->
              Mutex.lock mu;
              if ev.Events.lifecycle = Events.Ev_resync then
                resyncs := ev.Events.seq :: !resyncs
              else if ev.Events.seq > 0 then seen := ev.Events.seq :: !seen;
              Mutex.unlock mu)));
    let producer = ok (Connect.open_uri ("test://" ^ host ^ "/")) in
    let cycle i =
      let name = Printf.sprintf "e20-%d" i in
      let dom = ok (Domain.create (define_domain (List.hd kits) producer name)) in
      ignore dom;
      ok (Domain.destroy (ok (Domain.lookup_by_name producer name)))
    in
    (* the stale-read probe: running now, stopped during the outage *)
    let probe_name = fresh "probe" in
    let pprobe = define_domain (List.hd kits) producer probe_name in
    ok (Domain.create pprobe);
    let sprobe = ok (Domain.lookup_by_name sub probe_name) in
    assert (ok (Domain.is_active sprobe));
    (* phase 1: chaos churn — cuts land mid-stream, resumes replay *)
    for i = 1 to cycles do
      cycle i;
      ignore (Connect.list_domains sub)
    done;
    (* phase 2: one severed outage with traffic inside it *)
    let admin = ok (Admin.connect ~daemon:daemon_name ()) in
    let srv = ok (Admin.lookup_server admin "libvirtd") in
    List.iter
      (fun c -> ok (Admin.client_disconnect srv c.Admin.cl_id))
      (ok (Admin.list_clients srv));
    let dsrv = Option.get (Daemon.find_server daemon "libvirtd") in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while
      fst (Server_obj.client_counts dsrv) > 0 && Unix.gettimeofday () < deadline
    do
      Thread.delay 0.005
    done;
    ok (Domain.destroy pprobe);
    cycle (cycles + 1);
    cycle (cycles + 2);
    (* phase 3: resume (replay or gap verdict) and settle.  The uncached
       listing forces the reconnect first: the cached probe read alone
       would race the receiver thread noticing the severed wire. *)
    ignore (Connect.list_domains sub);
    let probe_stale = ok (Domain.is_active sprobe) (* truth: stopped *) in
    let est = ok (Admin.event_stats admin) in
    let head = est.Admin.es_head_seq in
    let snapshot () =
      Mutex.lock mu;
      let s = List.sort_uniq compare !seen in
      let n_raw = List.length !seen in
      let flushed = List.fold_left max 0 !resyncs in
      let n_resyncs = List.length !resyncs in
      Mutex.unlock mu;
      (s, n_raw, flushed, n_resyncs)
    in
    (* silent loss: a position neither delivered nor covered by a resync
       flush (everything at or below a resync's seq was flushed over) *)
    let silent_losses () =
      let s, _, flushed, _ = snapshot () in
      List.length
        (List.filter
           (fun p -> p > flushed && not (List.mem p s))
           (List.init head (fun i -> i + 1)))
    in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while silent_losses () > 0 && Unix.gettimeofday () < deadline do
      ignore (Connect.list_domains sub);
      Thread.delay 0.01
    done;
    let s, n_raw, _, n_resyncs = snapshot () in
    let stats = Drv_remote.stats () in
    Admin.close admin;
    Connect.close sub;
    Connect.close producer;
    Daemon.stop daemon;
    [
      label;
      string_of_int ring_capacity;
      string_of_int head;
      string_of_int (List.length s);
      string_of_int (n_raw - List.length s);
      string_of_int (silent_losses ());
      string_of_int stats.Drv_remote.st_events_replayed;
      string_of_int stats.Drv_remote.st_event_gaps;
      string_of_int n_resyncs;
      string_of_int stats.Drv_remote.st_reconnects;
      (if probe_stale then "1 STALE" else "0");
    ]
  in
  table
    [
      "ring"; "capacity"; "emitted"; "delivered"; "dups"; "silent lost";
      "replayed"; "gaps"; "resyncs"; "reconnects"; "stale reads";
    ]
    [
      run_variant ~label:"ample" ~ring_capacity:1024;
      run_variant ~label:"tiny" ~ring_capacity:4;
    ]

(* ------------------------------------------------------------------ *)
(* E21: server reply cache — zero-work read path                       *)
(* ------------------------------------------------------------------ *)

let replycache () =
  section "E21: server reply cache - zero-work read path";
  subsection "hot bulk reads, clients x domains, cache on vs off; then a";
  subsection "write-churn mix proving invalidation never serves stale bytes\n";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let combos = if smoke then [ (4, 50) ] else [ (8, 100); (32, 1000) ] in
  let duration_s = if smoke then 0.3 else 2.0 in
  let json_rows = ref [] in
  let run_variant ~clients ~domains ~cache =
    let daemon_name = fresh "rcd" in
    let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
    let host = fresh "rcn" in
    let producer = ok (Connect.open_uri ("test://" ^ host ^ "/")) in
    for i = 1 to domains do
      ignore
        (define_domain (List.hd kits) producer (Printf.sprintf "rc-%d" i))
    done;
    (* Raw RPC clients: the cache removes *server* work (dispatch,
       handler, encode), so measure the daemon's read-serving capacity
       without paying a client-side decode of every record on each call
       (all worker threads share one runtime lock, which would swamp the
       server-side difference under test). *)
    let open_uri =
      Printf.sprintf "test://%s/%s" host
        (if cache then "" else "?replycache=0")
    in
    let conns =
      Array.init clients (fun _ ->
          let c =
            ok
              (Rpc_client.connect
                 ~address:(Daemon.mgmt_address daemon)
                 ~kind:Transport.Unix_sock ~program:Rp.program
                 ~version:Rp.version ())
          in
          ignore
            (ok
               (Rpc_client.call c
                  ~procedure:(Rp.proc_to_int Rp.Proc_open)
                  ~body:(Rp.enc_string_body open_uri) ()));
          c)
    in
    let list_all = Rp.proc_to_int Rp.Proc_dom_list_all in
    let reads_per_s =
      measure_throughput ~n_threads:clients ~duration_s (fun i ->
          ignore (ok (Rpc_client.call conns.(i) ~procedure:list_all ~body:"" ())))
    in
    let admin = ok (Admin.connect ~daemon:daemon_name ()) in
    let rc = ok (Admin.reply_cache_stats admin) in
    Admin.close admin;
    Array.iter Rpc_client.close conns;
    Connect.close producer;
    Daemon.stop daemon;
    json_rows :=
      Mini_json.Obj
        [
          ("clients", Mini_json.Int clients);
          ("domains", Mini_json.Int domains);
          ("cache", Mini_json.Bool cache);
          ("reads_per_s", Mini_json.Float reads_per_s);
          ("hits", Mini_json.Int rc.Admin.rc_hits);
          ("misses", Mini_json.Int rc.Admin.rc_misses);
          ("invalidations", Mini_json.Int rc.Admin.rc_invalidations);
          ("patched_sends", Mini_json.Int rc.Admin.rc_patched_sends);
        ]
      :: !json_rows;
    ( reads_per_s,
      [
        string_of_int clients;
        string_of_int domains;
        (if cache then "on" else "off");
        pp_ops reads_per_s;
        string_of_int rc.Admin.rc_hits;
        string_of_int rc.Admin.rc_misses;
        string_of_int rc.Admin.rc_patched_sends;
      ] )
  in
  let rows, speedups =
    List.fold_left
      (fun (rows, speedups) (clients, domains) ->
        let on_tput, on_row = run_variant ~clients ~domains ~cache:true in
        let off_tput, off_row = run_variant ~clients ~domains ~cache:false in
        let speedup = on_tput /. off_tput in
        ( rows @ [ on_row @ [ Printf.sprintf "%.1fx" speedup ]; off_row @ [ "-" ] ],
          speedups @ [ (clients, domains, speedup) ] ))
      ([], []) combos
  in
  table
    [ "clients"; "domains"; "cache"; "reads/s"; "hits"; "misses"; "patched"; "speedup" ]
    rows;
  (* Write churn: every iteration flips an event-less flag through the
     direct path, then reads it back through cached and uncached daemon
     connections with raw frames recorded.  Freshness means the flag is
     always the one just written; byte fidelity means cached and uncached
     frames agree except for the serial word. *)
  let churn_iters = if smoke then 30 else 300 in
  let daemon_name = fresh "rcd" in
  let daemon = Daemon.start ~name:daemon_name ~config:quiet_config () in
  let host = fresh "rcn" in
  let producer = ok (Connect.open_uri ("test://" ^ host ^ "/")) in
  let dom = define_domain (List.hd kits) producer (fresh "churn") in
  let raw_conn uri =
    let mu = Mutex.create () in
    let last = ref "" in
    let client =
      ok
        (Rpc_client.connect
           ~address:(Daemon.mgmt_address daemon)
           ~kind:Transport.Unix_sock ~program:Rp.program ~version:Rp.version ())
    in
    Rpc_client.set_raw_reply_hook client
      (Some
         (fun wire ->
           Mutex.lock mu;
           last := wire;
           Mutex.unlock mu));
    ignore
      (ok
         (Rpc_client.call client
            ~procedure:(Rp.proc_to_int Rp.Proc_open)
            ~body:(Rp.enc_string_body uri) ()));
    let read () =
      let body =
        ok
          (Rpc_client.call client
             ~procedure:(Rp.proc_to_int Rp.Proc_dom_list_all)
             ~body:"" ())
      in
      Mutex.lock mu;
      let frame = !last in
      Mutex.unlock mu;
      (body, Rpc_packet.with_serial frame 0)
    in
    (client, read)
  in
  let on_client, on_read = raw_conn (Printf.sprintf "test://%s/" host) in
  let off_client, off_read =
    raw_conn (Printf.sprintf "test://%s/?replycache=0" host)
  in
  let stale = ref 0 and byte_diffs = ref 0 in
  let flag_of body =
    List.exists
      (fun r ->
        r.Driver.rec_ref.Driver.dom_name = Domain.name dom
        && r.Driver.rec_autostart = Some true)
      (Rp.dec_domain_record_list body)
  in
  for i = 1 to churn_iters do
    let flag = i mod 2 = 0 in
    ok (Domain.set_autostart dom flag);
    let body1, frame1 = on_read () in
    let _body2, frame2 = on_read () in
    let _body3, frame3 = off_read () in
    if flag_of body1 <> flag then incr stale;
    if frame1 <> frame2 || frame1 <> frame3 then incr byte_diffs
  done;
  Rpc_client.close on_client;
  Rpc_client.close off_client;
  Connect.close producer;
  Daemon.stop daemon;
  table
    [ "churn writes"; "stale reads"; "byte diffs vs cache-off" ]
    [ [ string_of_int churn_iters; string_of_int !stale; string_of_int !byte_diffs ] ];
  let json =
    Mini_json.Obj
      [
        ("experiment", Mini_json.String "E21 reply cache");
        ("smoke", Mini_json.Bool smoke);
        ("sweep", Mini_json.List (List.rev !json_rows));
        ( "speedups",
          Mini_json.List
            (List.map
               (fun (c, d, s) ->
                 Mini_json.Obj
                   [
                     ("clients", Mini_json.Int c);
                     ("domains", Mini_json.Int d);
                     ("speedup", Mini_json.Float s);
                   ])
               speedups) );
        ( "churn",
          Mini_json.Obj
            [
              ("writes", Mini_json.Int churn_iters);
              ("stale_reads", Mini_json.Int !stale);
              ("byte_diffs", Mini_json.Int !byte_diffs);
            ] );
      ]
  in
  let oc = open_out "BENCH_replycache.json" in
  output_string oc (Mini_json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "json summary written to BENCH_replycache.json\n"

(* ------------------------------------------------------------------ *)
(* E22: federated control plane — scatter-gather inventory, degraded   *)
(* operation with a killed shard                                       *)
(* ------------------------------------------------------------------ *)

(* Two claims.  Scaling: fleet-wide inventory cost grows sub-linearly
   in shard count because shards are queried concurrently, each over
   the v1.3 bulk wire — 16 shards of 1000 domains must answer in far
   less than 16x one shard's latency.  Degradation: with one of eight
   members killed mid-run, inventories keep succeeding with an explicit
   shard_error marker, latency bounded by the per-shard deadline slice
   (first post-kill query) and then by the probe circuit (Down members
   are skipped without waiting). *)
let fleet () =
  section "E22: federated control plane - scatter-gather inventory vs shards";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let per_shard = if smoke then 50 else 1000 in
  let shard_counts = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let slice_s = 0.5 in
  (* 20 ms of simulated hypervisor latency per member call: each shard's
     bulk listing blocks on its node's monitor exchange, as a remote
     member daemon would — the service time scatter-gather overlaps. *)
  let member_latency_us = 20_000 in
  subsection
    (Printf.sprintf
       "%d domains per shard, %d us member service time, shard slice %.0f ms\n"
       per_shard member_latency_us (slice_s *. 1000.));
  (* One member: its own daemon in front of its own seeded test node.
     Seed first, then apply the latency — it is per-call. *)
  let start_shard tag =
    let dname = fresh "e22d" in
    let node = fresh "e22n" in
    let daemon = Daemon.start ~name:dname ~config:quiet_config () in
    let direct = ok (Connect.open_uri ("test://" ^ node ^ "/")) in
    for i = 1 to per_shard do
      ignore (define_domain (List.hd kits) direct (Printf.sprintf "%s-%04d" tag i))
    done;
    Connect.close direct;
    Connect.close
      (ok
         (Connect.open_uri
            (Printf.sprintf "test://%s/?latency_us=%d" node member_latency_us)));
    (daemon, (tag, Printf.sprintf "test+unix://%s/?daemon=%s" node dname))
  in
  let with_fleet n f =
    let shards = List.init n (fun i -> start_shard (Printf.sprintf "s%d" i)) in
    let fname = fresh "e22f" in
    let t =
      Ovirt.Fleet.create ~name:fname ~members:(List.map snd shards)
        ~shard_slice_s:slice_s ~probe_interval_s:0.1 ~probe_timeout_s:0.2 ()
    in
    Fun.protect
      ~finally:(fun () ->
        Ovirt.Fleet.dissolve fname;
        List.iter (fun (d, _) -> Daemon.stop d) shards)
      (fun () -> f t (List.map fst shards))
  in
  let listing_of t =
    let ops = Ovirt.Fleet.ops_of t in
    ok ((Option.get ops.Driver.fleet).Driver.fleet_list_all ())
  in
  (* --- inventory latency vs shard count --------------------------- *)
  let sweep =
    List.map
      (fun n ->
        with_fleet n (fun t _ ->
            (* Expected rows: the seeded domains plus each test node's
               default "test" domain. *)
            let expect = n * (per_shard + 1) in
            let samples =
              List.init 5 (fun _ ->
                  let l, s = time_once (fun () -> listing_of t) in
                  if List.length l.Driver.fl_records <> expect then
                    failwith
                      (Printf.sprintf "E22: %d rows from %d shards, wanted %d"
                         (List.length l.Driver.fl_records) n expect);
                  if l.Driver.fl_shard_errors <> [] then
                    failwith "E22: healthy fleet reported shard errors";
                  s)
            in
            let median =
              let a = Array.of_list samples in
              Array.sort compare a;
              a.(Array.length a / 2)
            in
            (n, expect, median *. 1000.)))
      shard_counts
  in
  table
    [ "shards"; "domains"; "inventory (median of 5)" ]
    (List.map
       (fun (n, d, ms) ->
         [ string_of_int n; string_of_int d; Printf.sprintf "%.2f ms" ms ])
       sweep);
  let _, _, t_one = List.hd sweep in
  let n_max, _, t_max = List.nth sweep (List.length sweep - 1) in
  let ratio = t_max /. Float.max 0.001 t_one in
  subsection
    (Printf.sprintf "%dx the shards (and domains): %.1fx the latency\n" n_max ratio);
  if ratio >= float_of_int n_max then
    failwith "E22: inventory latency scaled linearly or worse in shard count";
  (* --- degraded run: one of eight shards killed mid-run ------------ *)
  let n_members = if smoke then 4 else 8 in
  let iters = if smoke then 12 else 40 in
  let kill_at = iters / 3 in
  let degraded =
    with_fleet n_members (fun t daemons ->
        let full = n_members * (per_shard + 1) in
        let reduced = full - (per_shard + 1) in
        let latencies = ref [] in
        let flagged = ref 0 in
        for i = 1 to iters do
          if i = kill_at then Daemon.stop (List.nth daemons (n_members / 2));
          let l, s = time_once (fun () -> listing_of t) in
          latencies := (s *. 1000.) :: !latencies;
          let rows = List.length l.Driver.fl_records in
          if rows <> full && rows <> reduced then
            failwith
              (Printf.sprintf "E22 degraded: %d rows (full %d, reduced %d)" rows
                 full reduced);
          let uuids =
            List.map
              (fun r -> Vmm.Uuid.to_string r.Driver.rec_ref.Driver.dom_uuid)
              l.Driver.fl_records
          in
          if List.length (List.sort_uniq compare uuids) <> rows then
            failwith "E22 degraded: double-counted domain";
          if l.Driver.fl_shard_errors <> [] then incr flagged;
          if rows = reduced && l.Driver.fl_shard_errors = [] then
            failwith "E22 degraded: shard missing without a marker"
        done;
        let post_kill =
          let a = Array.of_list (List.filteri (fun i _ -> i < iters - kill_at) !latencies) in
          Array.sort compare a;
          a
        in
        let p99 = percentile post_kill 99.0 in
        let bound = slice_s *. 1000. *. 2.0 in
        if p99 >= bound then
          failwith
            (Printf.sprintf "E22 degraded: post-kill p99 %.1f ms >= bound %.1f ms"
               p99 bound);
        if !flagged = 0 then failwith "E22 degraded: kill never surfaced";
        (p99, bound, !flagged))
  in
  let p99, bound, flagged = degraded in
  table
    [ "members"; "killed"; "inventories"; "degraded-flagged"; "post-kill p99"; "bound" ]
    [
      [
        string_of_int n_members; "1"; string_of_int iters; string_of_int flagged;
        Printf.sprintf "%.1f ms" p99; Printf.sprintf "%.1f ms" bound;
      ];
    ];
  print_endline
    "degraded assertions passed: explicit markers, bounded p99, no double counts";
  let json =
    Mini_json.Obj
      [
        ("experiment", Mini_json.String "E22 federated control plane");
        ("smoke", Mini_json.Bool smoke);
        ("domains_per_shard", Mini_json.Int per_shard);
        ("shard_slice_ms", Mini_json.Float (slice_s *. 1000.));
        ( "inventory_sweep",
          Mini_json.List
            (List.map
               (fun (n, d, ms) ->
                 Mini_json.Obj
                   [
                     ("shards", Mini_json.Int n);
                     ("domains", Mini_json.Int d);
                     ("inventory_ms", Mini_json.Float ms);
                   ])
               sweep) );
        ("latency_ratio_max_vs_one", Mini_json.Float ratio);
        ( "degraded",
          Mini_json.Obj
            [
              ("members", Mini_json.Int n_members);
              ("killed", Mini_json.Int 1);
              ("inventories", Mini_json.Int iters);
              ("flagged", Mini_json.Int flagged);
              ("post_kill_p99_ms", Mini_json.Float p99);
              ("bound_ms", Mini_json.Float bound);
            ] );
      ]
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Mini_json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "json summary written to BENCH_fleet.json\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("table4", table4);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table5", table5);
    ("fig6", fig6);
    ("table6", table6);
    ("chaos", chaos);
    ("rwlock", rwlock);
    ("recovery", recovery);
    ("bulk", bulk);
    ("overload", overload);
    ("reconcile", reconcile);
    ("c10k", c10k);
    ("events", events);
    ("replycache", replycache);
    ("fleet", fleet);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  print_endline "ovirt benchmark harness (reconstructed DATE'10 evaluation)";
  print_endline "shapes under test are documented in DESIGN.md S4 / EXPERIMENTS.md";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None -> Printf.eprintf "unknown experiment %S (skipped)\n" name)
    selected
